package cmpnet

// Table tests for the typed construction-validation errors: every
// misuse of the chaining construction methods (AddStage, AddWiring,
// Embed) must panic with a *LineError carrying the offending method,
// line, and reason — and FromComparators must surface the same error
// as an ordinary return for edge lists arriving as data.

import (
	"errors"
	"strings"
	"testing"

	"absort/internal/wiring"
)

// mustLineError runs fn, which must panic with *LineError, and returns it.
func mustLineError(t *testing.T, name string, fn func()) *LineError {
	t.Helper()
	var le *LineError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			var ok bool
			if le, ok = r.(*LineError); !ok {
				t.Fatalf("%s: panicked with %T (%v), want *LineError", name, r, r)
			}
		}()
		fn()
	}()
	return le
}

func TestLineErrorTable(t *testing.T) {
	sub := New(2, "sub").AddStage(Comparator{I: 0, J: 1})
	cases := []struct {
		name       string
		fn         func()
		method     string
		line       int
		wantReason string
	}{
		{"AddStage/low-out-of-range",
			func() { New(4, "t").AddStage(Comparator{I: -1, J: 2}) },
			"AddStage", -1, "out of range"},
		{"AddStage/high-out-of-range",
			func() { New(4, "t").AddStage(Comparator{I: 0, J: 4}) },
			"AddStage", 4, "out of range"},
		{"AddStage/self-compare",
			func() { New(4, "t").AddStage(Comparator{I: 2, J: 2}) },
			"AddStage", 2, "compares a line with itself"},
		{"AddStage/line-touched-twice",
			func() { New(4, "t").AddStage(Comparator{I: 0, J: 1}, Comparator{I: 1, J: 2}) },
			"AddStage", 1, "touched twice"},
		{"AddWiring/wrong-length",
			func() { New(4, "t").AddWiring(wiring.Perm{0, 1}) },
			"AddWiring", 2, "wiring length 2, want 4"},
		{"AddWiring/source-out-of-range",
			func() { New(4, "t").AddWiring(wiring.Perm{0, 1, 2, 7}) },
			"AddWiring", 7, "source out of range"},
		{"AddWiring/source-wired-twice",
			func() { New(4, "t").AddWiring(wiring.Perm{0, 1, 1, 3}) },
			"AddWiring", 1, "source line wired twice"},
		{"Embed/wrong-length",
			func() { New(4, "t").Embed(sub, []int{0, 1, 2}) },
			"Embed", 3, "want 2"},
		{"Embed/line-out-of-range",
			func() { New(4, "t").Embed(sub, []int{0, 4}) },
			"Embed", 4, "out of range"},
		{"Embed/line-used-twice",
			func() { New(4, "t").Embed(sub, []int{3, 3}) },
			"Embed", 3, "used twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			le := mustLineError(t, tc.name, tc.fn)
			if le.Network != "t" {
				t.Errorf("Network = %q, want %q", le.Network, "t")
			}
			if le.Method != tc.method {
				t.Errorf("Method = %q, want %q", le.Method, tc.method)
			}
			if le.Line != tc.line {
				t.Errorf("Line = %d, want %d", le.Line, tc.line)
			}
			if !strings.Contains(le.Reason, tc.wantReason) {
				t.Errorf("Reason = %q, want it to contain %q", le.Reason, tc.wantReason)
			}
			want := `cmpnet "t": ` + tc.method + ":"
			if msg := le.Error(); !strings.HasPrefix(msg, want) || !strings.Contains(msg, tc.wantReason) {
				t.Errorf("Error() = %q, want prefix %q containing %q", msg, want, tc.wantReason)
			}
		})
	}
}

// TestFromComparatorsErrors pins that edge lists arriving as data get
// the typed error back as a return value, never a panic.
func TestFromComparatorsErrors(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		pairs [][2]int
		line  int
	}{
		{"out-of-range", 4, [][2]int{{0, 1}, {2, 4}}, 4},
		{"negative", 4, [][2]int{{-1, 1}}, -1},
		{"self-compare", 4, [][2]int{{2, 2}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := FromComparators(tc.n, "edges", tc.pairs)
			if nw != nil || err == nil {
				t.Fatalf("FromComparators = %v, %v; want nil network and error", nw, err)
			}
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("error %T (%v) is not *LineError", err, err)
			}
			if le.Network != "edges" || le.Method != "AddStage" || le.Line != tc.line {
				t.Errorf("LineError = %+v, want Network=edges Method=AddStage Line=%d", le, tc.line)
			}
		})
	}
	if _, err := FromComparators(0, "edges", nil); err == nil {
		t.Fatal("FromComparators(0) succeeded")
	}
	// A valid edge list builds the network it denotes.
	nw, err := FromComparators(4, "valid", [][2]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Cost() != 5 || !nw.SortsAllBinary() {
		t.Fatalf("valid edge list: cost %d, sorts=%v", nw.Cost(), nw.SortsAllBinary())
	}
}
