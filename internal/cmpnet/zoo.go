// The network zoo: comparator networks registered as routing engines.
// Registration happens at package init, and internal/concentrator
// imports this package, so every layer that resolves engines through
// the planner registry — concentrator plans, the radix permuter, the
// word sorter, serve's recompile-around rotation, the front door, the
// absort facade, permroute's -engine flag — sees the zoo without
// knowing it exists. Each entry lowers through the generic
// Network→IR path (LowerTo), so all of them ride the scalar, packed,
// wide, batch, fault-injection, and serving machinery for free.
package cmpnet

import (
	"absort/internal/core"
	"absort/internal/planner"
)

// Zoo engines, registered in init order after the paper's four.
var (
	// EngineOEM sorts with Batcher's odd-even merge network (Fig. 4(a)).
	EngineOEM planner.Engine
	// EngineBitonic sorts with Batcher's bitonic network.
	EngineBitonic planner.Engine
	// EngineBalanced sorts with the Fig. 4(b) alternative odd-even merge
	// (shuffle wirings + balanced merging blocks) — its lowering
	// exercises the wiring-flattening OpPermute path.
	EngineBalanced planner.Engine
	// EnginePeriodic sorts with the periodic balanced network [8]: one
	// balanced merging block compiled once and replayed lg n times
	// through the fused level-replay (Layout.Repeat) when it is the
	// whole program.
	EnginePeriodic planner.Engine
	// EngineFishGvV is the paper's fish sorter with the Green/van
	// Voorhis 60-comparator kernel replacing the mux-merger at 16-wide
	// recursion base cases.
	EngineFishGvV planner.Engine
	// EngineGvV16 is the bare 16-input Green/van Voorhis kernel as a
	// width-locked engine (MinN = MaxN = 16).
	EngineGvV16 planner.Engine
)

func lowerNetwork(build func(n int) *Network) func(b *planner.Builder, lo, hi int32, k int) {
	return func(b *planner.Builder, lo, hi int32, _ int) {
		if hi-lo == 1 {
			return
		}
		build(int(hi - lo)).LowerTo(b, lo)
	}
}

// gvvBase lowers the fish-gvv16 engine's base sorter: the GvV kernel at
// exactly 16 lines, the mux-merger below it, and a merge-sort recursion
// down to 16-wide leaves above it.
func gvvBase(b *planner.Builder, lo, hi int32) {
	s := hi - lo
	switch {
	case s < 16:
		b.MMSort(lo, hi)
	case s == 16:
		GreenVanVoorhis16().LowerTo(b, lo)
	default:
		gvvBase(b, lo, lo+s/2)
		gvvBase(b, lo+s/2, hi)
		b.MMMerge(lo, hi)
	}
}

func init() {
	EngineOEM = planner.MustRegister(planner.EngineSpec{
		Name: "oem",
		Sort: lowerNetwork(OddEvenMergeSort),
	})
	EngineBitonic = planner.MustRegister(planner.EngineSpec{
		Name: "bitonic",
		Sort: lowerNetwork(BitonicSort),
	})
	EngineBalanced = planner.MustRegister(planner.EngineSpec{
		Name: "balanced",
		Sort: lowerNetwork(AlternativeOEMSort),
	})
	EnginePeriodic = planner.MustRegister(planner.EngineSpec{
		Name: "periodic",
		Period: func(b *planner.Builder, lo, hi int32) {
			if hi-lo == 1 {
				return
			}
			BalancedMergingBlock(int(hi - lo)).LowerTo(b, lo)
		},
		Periods: func(n int) int { return core.Lg(n) },
	})
	EngineFishGvV = planner.MustRegister(planner.EngineSpec{
		Name: "fish-gvv16",
		Sort: func(b *planner.Builder, lo, hi int32, k int) {
			s := hi - lo
			if s == 1 {
				return
			}
			if s == 2 {
				b.MMSort(lo, hi)
				return
			}
			if k <= 0 {
				k = planner.DefaultFishK(int(s))
			}
			b.FishSortBase(lo, hi, int32(k), gvvBase)
		},
		CheckK: planner.CheckFishK,
	})
	EngineGvV16 = planner.MustRegister(planner.EngineSpec{
		Name: "gvv16",
		Sort: func(b *planner.Builder, lo, hi int32, _ int) {
			GreenVanVoorhis16().LowerTo(b, lo)
		},
		MinN: 16,
		MaxN: 16,
	})
}
