// Optimal and near-optimal small-n sorting kernels: the recursion base
// cases the network zoo swaps into the adaptive sorters. Every network
// here is certified exhaustively by the zero-one principle in the tests
// (SortsAllBinary over all 2^n binary inputs).
package cmpnet

import (
	"fmt"
	"math/bits"
)

// gvv16Stages is the Green / van Voorhis 16-input sorting network: 60
// comparators in 10 parallel stages — the best known comparator count
// for 16 inputs (the information-theoretic lower bound arguments and
// Sergeev's analysis say 60 is optimal among known constructions; cf.
// Knuth vol. 3 §5.3.4). Four merge-exchange-style stages, then Green's
// irregular tail.
var gvv16Stages = [][][2]int{
	{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}, {14, 15}},
	{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}, {12, 14}, {13, 15}},
	{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}, {9, 13}, {10, 14}, {11, 15}},
	{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}, {7, 15}},
	{{5, 10}, {6, 9}, {3, 12}, {13, 14}, {7, 11}, {1, 2}, {4, 8}},
	{{1, 4}, {7, 13}, {2, 8}, {11, 14}},
	{{2, 4}, {5, 6}, {9, 10}, {11, 13}, {3, 8}, {7, 12}},
	{{6, 8}, {10, 12}, {3, 5}, {7, 9}},
	{{3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
	{{6, 7}, {8, 9}},
}

// GreenVanVoorhis16 returns the 60-comparator, depth-10 Green / van
// Voorhis 16-input sorting network.
func GreenVanVoorhis16() *Network {
	nw := New(16, "gvv-16")
	for _, st := range gvv16Stages {
		cmps := make([]Comparator, len(st))
		for i, p := range st {
			cmps[i] = Comparator{I: p[0], J: p[1]}
		}
		nw.AddStage(cmps...)
	}
	return nw
}

// MergeExchangeSort returns Batcher's merge-exchange sorting network for
// arbitrary n (Knuth vol. 3, Algorithm 5.2.2M) — the generalization of
// odd-even merge sort to non-power-of-two widths. Cost is within a few
// comparators of the best known networks at 17 ≤ n ≤ 20 (the
// Ehlers/Müller optima — 71, 77, 85, 91 — are drop-in import targets
// once their edge lists are carried in; see SmallSort).
func MergeExchangeSort(n int) *Network {
	nw := New(n, fmt.Sprintf("merge-exchange-%d", n))
	if n < 2 {
		return nw
	}
	t := bits.Len(uint(n - 1)) // ⌈lg n⌉
	for p := 1 << (t - 1); p > 0; p >>= 1 {
		q := 1 << (t - 1)
		r := 0
		d := p
		for {
			var cmps []Comparator
			for i := 0; i+d < n; i++ {
				if i&p == r {
					cmps = append(cmps, Comparator{I: i, J: i + d})
				}
			}
			nw.AddStage(cmps...)
			if q == p {
				break
			}
			d = q - p
			q >>= 1
			r = p
		}
	}
	return nw
}

// SmallSort returns the best sorting network this package carries for n
// inputs: Green/van Voorhis at 16, Batcher's merge-exchange otherwise
// (which handles arbitrary n, in particular the 17–20 widths whose
// published optima are not yet imported as edge lists).
func SmallSort(n int) *Network {
	if n == 16 {
		return GreenVanVoorhis16()
	}
	return MergeExchangeSort(n)
}
