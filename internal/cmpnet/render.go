package cmpnet

import (
	"fmt"
	"strings"
)

// Diagram renders the network as an ASCII Knuth diagram: horizontal wires,
// one column per comparator stage with '●' endpoints joined by '│', and
// wiring connections shown as permutation columns. Intended for inspecting
// the constructions of Figs. 1 and 4 in documentation and tooling.
func (nw *Network) Diagram() string {
	type col struct {
		cells []rune // one per line
		note  string
	}
	var cols []col
	for _, o := range nw.ops {
		c := col{cells: make([]rune, nw.n)}
		for i := range c.cells {
			c.cells[i] = '─'
		}
		if o.wire != nil {
			for i := range c.cells {
				c.cells[i] = 'π'
			}
			c.note = fmt.Sprintf("wiring %v", []int(o.wire))
			cols = append(cols, c)
			continue
		}
		for _, cmp := range o.cmps {
			lo, hi := cmp.I, cmp.J
			if lo > hi {
				lo, hi = hi, lo
			}
			c.cells[lo], c.cells[hi] = '●', '●'
			for i := lo + 1; i < hi; i++ {
				if c.cells[i] == '─' {
					c.cells[i] = '│'
				}
			}
		}
		cols = append(cols, c)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, cost=%d, depth=%d)\n",
		nw.name, nw.n, nw.Cost(), nw.Depth())
	for i := 0; i < nw.n; i++ {
		fmt.Fprintf(&sb, "%2d ", i)
		for _, c := range cols {
			sb.WriteRune('─')
			sb.WriteRune(c.cells[i])
		}
		sb.WriteString("─\n")
	}
	for ci, c := range cols {
		if c.note != "" {
			fmt.Fprintf(&sb, "   column %d: %s\n", ci+1, c.note)
		}
	}
	return sb.String()
}
