package cmpnet

import (
	"math/rand"
	"sort"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/wiring"
)

// TestFig1 reproduces experiment E1: the four-input network of Fig. 1 has
// cost 5 and depth 3, and sorts everything.
func TestFig1(t *testing.T) {
	nw := Fig1()
	if c := nw.Cost(); c != 5 {
		t.Errorf("Fig. 1 cost = %d, want 5", c)
	}
	if d := nw.Depth(); d != 3 {
		t.Errorf("Fig. 1 depth = %d, want 3", d)
	}
	if !nw.SortsAllBinary() {
		t.Error("Fig. 1 network does not sort all binary sequences")
	}
	// All 4! permutations of distinct keys, via the zero-one principle's
	// converse direction checked directly.
	perm := []int{1, 2, 3, 4}
	sort.Ints(perm)
	var rec func(p []int, k int)
	rec = func(p []int, k int) {
		if k == len(p) {
			out := nw.ApplyInts(p)
			if !sort.IntsAreSorted(out) {
				t.Errorf("Fig. 1 failed on %v: %v", p, out)
			}
			return
		}
		for i := k; i < len(p); i++ {
			p[k], p[i] = p[i], p[k]
			rec(p, k+1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(perm, 0)
}

func TestStageValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("out of range", func() { New(4, "x").AddStage(Comparator{0, 4}) })
	mustPanic("self-compare", func() { New(4, "x").AddStage(Comparator{2, 2}) })
	mustPanic("overlap", func() {
		New(4, "x").AddStage(Comparator{0, 1}, Comparator{1, 2})
	})
	mustPanic("bad wiring", func() { New(4, "x").AddWiring(wiring.Perm{0, 0, 1, 2}) })
	mustPanic("zero lines", func() { New(0, "x") })
	mustPanic("apply arity", func() { Fig1().ApplyInts([]int{1, 2}) })
	mustPanic("embed arity", func() { New(8, "x").Embed(Fig1(), []int{0, 1}) })
	mustPanic("pow2", func() { OddEvenMergeSort(12) })
}

// TestBatcherOEMSorts checks Batcher's network sorts all binary inputs for
// n up to 16 (zero-one principle ⇒ sorts everything).
func TestBatcherOEMSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		if !OddEvenMergeSort(n).SortsAllBinary() {
			t.Errorf("Batcher OEM n=%d is not a sorting network", n)
		}
	}
}

// TestBatcherOEMParams checks the classical cost/depth formulas:
// depth = lg n (lg n + 1)/2, cost = (lg²n − lg n + 4)n/4 − 1.
func TestBatcherOEMParams(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		nw := OddEvenMergeSort(n)
		lg := 0
		for 1<<uint(lg) < n {
			lg++
		}
		wantDepth := lg * (lg + 1) / 2
		if d := nw.Depth(); d != wantDepth {
			t.Errorf("n=%d: Batcher depth %d, want %d", n, d, wantDepth)
		}
		wantCost := (lg*lg-lg+4)*n/4 - 1
		if c := nw.Cost(); c != wantCost {
			t.Errorf("n=%d: Batcher cost %d, want %d", n, c, wantCost)
		}
	}
}

// TestOddEvenMergeMerges verifies the merger on all pairs of sorted halves.
func TestOddEvenMergeMerges(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		nw := OddEvenMerge(n)
		bitvec.AllBisorted(n, func(v bitvec.Vector) bool {
			if out := nw.ApplyBits(v); !out.IsSorted() {
				t.Errorf("n=%d: OEM merge failed on %s: %s", n, v, out)
				return false
			}
			return true
		})
		// Word-level spot check.
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 50; i++ {
			in := make([]int, n)
			for j := range in {
				in[j] = rng.Intn(100)
			}
			sort.Ints(in[:n/2])
			sort.Ints(in[n/2:])
			if out := nw.ApplyInts(in); !sort.IntsAreSorted(out) {
				t.Fatalf("n=%d: OEM merge failed on %v: %v", n, in, out)
			}
		}
	}
}

func TestBitonicSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		if !BitonicSort(n).SortsAllBinary() {
			t.Errorf("bitonic n=%d is not a sorting network", n)
		}
	}
	// Bitonic depth matches Batcher's: lg n (lg n + 1)/2.
	nw := BitonicSort(32)
	if d := nw.Depth(); d != 15 {
		t.Errorf("bitonic(32) depth = %d, want 15", d)
	}
	// Cost = n lg n (lg n + 1)/4 = 32·5·6/4 = 240.
	if c := nw.Cost(); c != 240 {
		t.Errorf("bitonic(32) cost = %d, want 240", c)
	}
}

func TestOddEvenTransposition(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		nw := OddEvenTransposition(n)
		if !nw.SortsAllBinary() {
			t.Errorf("OET n=%d is not a sorting network", n)
		}
		if c := nw.Cost(); c != n*(n-1)/2 {
			t.Errorf("OET n=%d cost = %d, want %d", n, c, n*(n-1)/2)
		}
	}
}

// TestBalancedBlockSortsClassA verifies Theorem 2's consequence: a balanced
// merging block sorts every binary sequence in A_n.
func TestBalancedBlockSortsClassA(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		nw := BalancedMergingBlock(n)
		bitvec.All(n, func(v bitvec.Vector) bool {
			if !v.InClassA() {
				return true
			}
			if out := nw.ApplyBits(v); !out.IsSorted() {
				t.Errorf("n=%d: balanced block failed on A_n member %s: %s", n, v, out)
				return false
			}
			return true
		})
	}
}

// TestBalancedBlockFirstStageTheorem2 verifies Theorem 2 itself: after the
// first mirror stage on any Z ∈ A_n, one output half is clean and the other
// belongs to A_{n/2}.
func TestBalancedBlockFirstStageTheorem2(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		first := New(n, "first-stage")
		cmps := make([]Comparator, 0, n/2)
		for i := 0; i < n/2; i++ {
			cmps = append(cmps, Comparator{i, n - 1 - i})
		}
		first.AddStage(cmps...)
		bitvec.All(n, func(z bitvec.Vector) bool {
			if !z.InClassA() {
				return true
			}
			y := first.ApplyBits(z)
			yu, yl := y.Halves()
			ok := (yu.IsClean() && yl.InClassA()) || (yl.IsClean() && yu.InClassA())
			if !ok {
				t.Errorf("n=%d: Theorem 2 violated for %s: YU=%s YL=%s", n, z, yu, yl)
				return false
			}
			return true
		})
	}
}

// TestBalancedBlockExample2 reproduces Example 2: subjecting 101010/11 to
// the merging block's first stage gives YU = 1000 and YL = 1111.
func TestBalancedBlockExample2(t *testing.T) {
	n := 8
	first := New(n, "first-stage")
	first.AddStage(Comparator{0, 7}, Comparator{1, 6}, Comparator{2, 5}, Comparator{3, 4})
	y := first.ApplyBits(bitvec.MustFromString("101010/11"))
	yu, yl := y.Halves()
	if yu.String() != "1000" || yl.String() != "1111" {
		t.Errorf("Example 2: YU=%s YL=%s, want 1000/1111", yu, yl)
	}
}

// TestBalancedBlockMergesShuffledSortedWords verifies the word-level merge
// property used by Fig. 4(b): the balanced block sorts the two-way shuffle
// of two sorted word sequences.
func TestBalancedBlockMergesShuffledSortedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{4, 8, 16, 32} {
		nw := BalancedMergingBlock(n)
		for i := 0; i < 200; i++ {
			in := make([]int, n)
			for j := range in {
				in[j] = rng.Intn(50)
			}
			sort.Ints(in[:n/2])
			sort.Ints(in[n/2:])
			sh := wiring.Apply(wiring.PerfectShuffle(n), in)
			if out := nw.ApplyInts(sh); !sort.IntsAreSorted(out) {
				t.Fatalf("n=%d: balanced block failed on shuffled %v: %v", n, sh, out)
			}
		}
	}
}

// TestAlternativeOEMSorts checks E4: the Fig. 4(b) construction (with and
// without the redundant first stage) is a sorting network.
func TestAlternativeOEMSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		if !AlternativeOEMSort(n).SortsAllBinary() {
			t.Errorf("alternative OEM n=%d is not a sorting network", n)
		}
		if !Fig4b(n).SortsAllBinary() {
			t.Errorf("Fig. 4(b) n=%d is not a sorting network", n)
		}
	}
}

// TestFig4bRedundancy checks the paper's redundancy claim: the first stage
// and shuffle add n/2 comparators but do not change the sorting behavior.
func TestFig4bRedundancy(t *testing.T) {
	n := 16
	with, without := Fig4b(n), AlternativeOEMSort(n)
	if with.Cost() != without.Cost()+n/2 {
		t.Errorf("cost with = %d, without = %d; difference should be n/2 = %d",
			with.Cost(), without.Cost(), n/2)
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		in := make([]int, n)
		for j := range in {
			in[j] = rng.Intn(30)
		}
		a := with.ApplyInts(in)
		b := without.ApplyInts(in)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("outputs differ on %v: %v vs %v", in, a, b)
			}
		}
	}
}

// TestAlternativeOEMWordLevel verifies Fig. 4(b)'s "works for arbitrary
// numbers" claim on random word inputs.
func TestAlternativeOEMWordLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{8, 16, 32} {
		nw := AlternativeOEMSort(n)
		for i := 0; i < 200; i++ {
			in := make([]int, n)
			for j := range in {
				in[j] = rng.Intn(1000)
			}
			if out := nw.ApplyInts(in); !sort.IntsAreSorted(out) {
				t.Fatalf("n=%d: alternative OEM failed on %v: %v", n, in, out)
			}
		}
	}
}

// TestBalancedBlockParams checks cost (n/2)·lg n and depth lg n — the
// O(n lg n)/O(lg n) figures quoted for the merging block.
func TestBalancedBlockParams(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		nw := BalancedMergingBlock(n)
		lg := 0
		for 1<<uint(lg) < n {
			lg++
		}
		if c := nw.Cost(); c != n/2*lg {
			t.Errorf("n=%d: balanced block cost %d, want %d", n, c, n/2*lg)
		}
		if d := nw.Depth(); d != lg {
			t.Errorf("n=%d: balanced block depth %d, want %d", n, d, lg)
		}
	}
}

// TestCircuitAgreesWithApply cross-validates the netlist emission against
// the direct interpreter on random inputs.
func TestCircuitAgreesWithApply(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, nw := range []*Network{
		Fig1(), OddEvenMergeSort(8), BitonicSort(8), AlternativeOEMSort(8),
		Fig4b(8), BalancedMergingBlock(8), OddEvenTransposition(6),
	} {
		c := nw.Circuit()
		if c.Stats().UnitCost != nw.Cost() {
			t.Errorf("%s: circuit cost %d != network cost %d",
				nw.Name(), c.Stats().UnitCost, nw.Cost())
		}
		if c.Stats().UnitDepth != nw.Depth() {
			t.Errorf("%s: circuit depth %d != network depth %d",
				nw.Name(), c.Stats().UnitDepth, nw.Depth())
		}
		for i := 0; i < 100; i++ {
			v := bitvec.Random(rng, nw.N())
			if got, want := c.Eval(v), nw.ApplyBits(v); !got.Equal(want) {
				t.Fatalf("%s: circuit %s != interpreter %s on %s",
					nw.Name(), got, want, v)
			}
		}
	}
}

// TestDepthIgnoresStagePacking verifies Depth() reports path depth, not
// stage count.
func TestDepthIgnoresStagePacking(t *testing.T) {
	a := New(4, "packed").AddStage(Comparator{0, 1}, Comparator{2, 3})
	b := New(4, "split").AddComparators(Comparator{0, 1}, Comparator{2, 3})
	if a.Depth() != 1 || b.Depth() != 1 {
		t.Errorf("depths = %d, %d; want 1, 1", a.Depth(), b.Depth())
	}
	if a.Stages() != 1 || b.Stages() != 2 {
		t.Errorf("stages = %d, %d; want 1, 2", a.Stages(), b.Stages())
	}
}

// TestEmbed verifies sub-network embedding onto arbitrary line subsets.
func TestEmbed(t *testing.T) {
	outer := New(8, "embedded")
	outer.Embed(Fig1(), []int{1, 3, 5, 7})
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 100; i++ {
		in := make([]int, 8)
		for j := range in {
			in[j] = rng.Intn(20)
		}
		out := outer.ApplyInts(in)
		// Odd lines sorted, even lines untouched.
		if !(out[1] <= out[3] && out[3] <= out[5] && out[5] <= out[7]) {
			t.Fatalf("embedded sorter did not sort odd lines: %v", out)
		}
		for _, j := range []int{0, 2, 4, 6} {
			if out[j] != in[j] {
				t.Fatalf("embedded sorter disturbed line %d: %v -> %v", j, in, out)
			}
		}
	}
}

// TestApplyDoesNotMutate ensures Apply copies its input.
func TestApplyDoesNotMutate(t *testing.T) {
	in := []int{3, 1, 2, 0}
	orig := append([]int(nil), in...)
	Fig1().ApplyInts(in)
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("ApplyInts mutated its input")
		}
	}
}

func TestSortsAllBinaryNegative(t *testing.T) {
	bad := New(4, "bad").AddStage(Comparator{0, 1})
	if bad.SortsAllBinary() {
		t.Error("single-comparator network reported as sorting network")
	}
}
