package cmpnet

import (
	"fmt"

	"absort/internal/wiring"
)

// PeriodicBalancedSort returns the periodic balanced sorting network of
// Dowd, Perl, Rudolph and Saks [8], [9] (see also Rudolph's robust sorting
// network [24]): lg n identical balanced merging blocks in cascade.
// Cost (n/2) lg² n, depth lg² n. The periodicity — every stage-block is
// the same circuit — is what makes the construction attractive for
// time-multiplexed implementations, the theme of the paper's Network 3.
func PeriodicBalancedSort(n int) *Network {
	mustPow2(n, "PeriodicBalancedSort")
	nw := New(n, fmt.Sprintf("periodic-balanced-%d", n))
	lg := 0
	for 1<<uint(lg) < n {
		lg++
	}
	for b := 0; b < lg; b++ {
		balancedBlock(nw, lineRange(0, n))
	}
	return nw
}

// HybridOEMSort answers the trade-off question Section III-A leaves "to
// the reader": distribute the overall sorting problem between the sorting
// and merging steps by first sorting n/b blocks of size b with Batcher's
// odd-even merge sorters, and then merging pairwise — each merge a two-way
// shuffle followed by a balanced merging block, exactly as in Fig. 4(b).
// b = 2 gives AlternativeOEMSort's structure; b = n is pure Batcher.
func HybridOEMSort(n, b int) *Network {
	mustPow2(n, "HybridOEMSort")
	mustPow2(b, "HybridOEMSort block")
	if b < 2 || b > n {
		panic(fmt.Sprintf("cmpnet: HybridOEMSort(%d, %d): need 2 ≤ b ≤ n", n, b))
	}
	nw := New(n, fmt.Sprintf("hybrid-oem-%d-b%d", n, b))
	for blk := 0; blk < n/b; blk++ {
		oemSort(nw, lineRange(blk*b, b))
	}
	for m := 2 * b; m <= n; m *= 2 {
		for blk := 0; blk < n/m; blk++ {
			lines := lineRange(blk*m, m)
			sh := wiring.PerfectShuffle(m)
			shuffled := make([]int, m)
			for j, i := range sh {
				shuffled[j] = lines[i]
			}
			balancedBlock(nw, shuffled)
			p := wiring.Identity(n)
			for j := range sh {
				p[lines[j]] = shuffled[j]
			}
			nw.AddWiring(p)
		}
	}
	return nw
}
