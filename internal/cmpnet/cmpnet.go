// Package cmpnet implements nonadaptive comparator networks — the classical
// sorting-network model the paper builds on and compares against. A network
// is a sequence of comparator stages optionally separated by fixed wiring
// connections (shuffles etc.); wiring is free, comparators carry unit cost
// and unit depth, matching the paper's bit-level accounting.
//
// The package provides the constructions referenced by the paper:
// Batcher's odd-even merge sorting network (Fig. 4(a)) [3], the alternative
// odd-even merge network with a balanced merging block (Fig. 4(b)), the
// balanced merging block itself [8], [9], [24], bitonic sort, odd-even
// transposition as a baseline, and the four-input example network of Fig. 1.
package cmpnet

import (
	"fmt"

	"absort/internal/bitvec"
	"absort/internal/netlist"
	"absort/internal/wiring"
)

// Comparator compares lines I and J (I ≠ J): after it, line I carries the
// minimum and line J the maximum.
type Comparator struct{ I, J int }

// LineError is the typed construction-validation error: an out-of-range,
// duplicated, or self-compared line in a stage, wiring, or embedding.
// The chaining construction methods (AddStage, AddWiring, Embed) panic
// with *LineError on misuse; FromComparators recovers it and returns it
// as an ordinary error for callers building networks from untrusted edge
// lists.
type LineError struct {
	Network string // network name
	Method  string // constructing method
	Line    int    // offending line index (or wiring length)
	Reason  string
}

func (e *LineError) Error() string {
	return fmt.Sprintf("cmpnet %q: %s: line %d: %s", e.Network, e.Method, e.Line, e.Reason)
}

// op is one element of a network: either a parallel comparator stage or a
// fixed wiring connection.
type op struct {
	wire wiring.Perm
	cmps []Comparator
}

// Network is a comparator network on N lines.
type Network struct {
	n    int
	name string
	ops  []op
}

// New returns an empty network on n lines.
func New(n int, name string) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("cmpnet: New(%d)", n))
	}
	return &Network{n: n, name: name}
}

// N returns the number of lines.
func (nw *Network) N() int { return nw.n }

// Name returns the network's name.
func (nw *Network) Name() string { return nw.name }

// AddStage appends a parallel comparator stage. The comparators must touch
// disjoint lines within the stage; violations panic with *LineError.
func (nw *Network) AddStage(cmps ...Comparator) *Network {
	touched := make(map[int]bool, 2*len(cmps))
	for _, c := range cmps {
		for _, l := range [2]int{c.I, c.J} {
			if l < 0 || l >= nw.n {
				panic(&LineError{Network: nw.name, Method: "AddStage", Line: l,
					Reason: fmt.Sprintf("out of range on %d lines (comparator %+v)", nw.n, c)})
			}
		}
		if c.I == c.J {
			panic(&LineError{Network: nw.name, Method: "AddStage", Line: c.I,
				Reason: "comparator compares a line with itself"})
		}
		for _, l := range [2]int{c.I, c.J} {
			if touched[l] {
				panic(&LineError{Network: nw.name, Method: "AddStage", Line: l,
					Reason: fmt.Sprintf("touched twice within one stage (comparator %+v)", c)})
			}
			touched[l] = true
		}
	}
	nw.ops = append(nw.ops, op{cmps: append([]Comparator(nil), cmps...)})
	return nw
}

// AddComparators appends comparators greedily packed into stages: each
// comparator starts a new stage only if it conflicts with the current one.
// This matches drawing a network as a sequence of comparators and lets
// recursive constructions ignore stage boundaries; Depth() still reports
// the true longest comparator path.
func (nw *Network) AddComparators(cmps ...Comparator) *Network {
	for _, c := range cmps {
		nw.AddStage(c)
	}
	return nw
}

// AddWiring appends a fixed wiring connection (cost and depth free). A
// wiring of the wrong length, or with out-of-range or duplicated
// sources, panics with *LineError.
func (nw *Network) AddWiring(p wiring.Perm) *Network {
	if len(p) != nw.n {
		panic(&LineError{Network: nw.name, Method: "AddWiring", Line: len(p),
			Reason: fmt.Sprintf("wiring length %d, want %d", len(p), nw.n)})
	}
	seen := make([]bool, nw.n)
	for _, src := range p {
		if src < 0 || src >= nw.n {
			panic(&LineError{Network: nw.name, Method: "AddWiring", Line: src,
				Reason: fmt.Sprintf("source out of range on %d lines", nw.n)})
		}
		if seen[src] {
			panic(&LineError{Network: nw.name, Method: "AddWiring", Line: src,
				Reason: "source line wired twice"})
		}
		seen[src] = true
	}
	nw.ops = append(nw.ops, op{wire: append(wiring.Perm(nil), p...)})
	return nw
}

// Embed appends a copy of sub with its lines mapped through lines: sub's
// line i becomes lines[i]. Wiring stages inside sub are extended with the
// identity outside the embedded lines. A line list of the wrong length,
// or with out-of-range or duplicated entries, panics with *LineError.
func (nw *Network) Embed(sub *Network, lines []int) *Network {
	if len(lines) != sub.n {
		panic(&LineError{Network: nw.name, Method: "Embed", Line: len(lines),
			Reason: fmt.Sprintf("embedding %q with %d lines, want %d", sub.name, len(lines), sub.n)})
	}
	seen := make(map[int]bool, len(lines))
	for _, l := range lines {
		if l < 0 || l >= nw.n {
			panic(&LineError{Network: nw.name, Method: "Embed", Line: l,
				Reason: fmt.Sprintf("embedded line out of range on %d lines", nw.n)})
		}
		if seen[l] {
			panic(&LineError{Network: nw.name, Method: "Embed", Line: l,
				Reason: "embedded line used twice"})
		}
		seen[l] = true
	}
	for _, o := range sub.ops {
		if o.wire != nil {
			p := wiring.Identity(nw.n)
			for j, i := range o.wire {
				p[lines[j]] = lines[i]
			}
			nw.AddWiring(p)
			continue
		}
		cmps := make([]Comparator, len(o.cmps))
		for k, c := range o.cmps {
			cmps[k] = Comparator{I: lines[c.I], J: lines[c.J]}
		}
		nw.ops = append(nw.ops, op{cmps: cmps})
	}
	return nw
}

// Cost returns the number of comparators.
func (nw *Network) Cost() int {
	total := 0
	for _, o := range nw.ops {
		total += len(o.cmps)
	}
	return total
}

// Depth returns the maximum number of comparators on any input-to-output
// path, regardless of how comparators were grouped into stages.
func (nw *Network) Depth() int {
	depth := make([]int, nw.n)
	for _, o := range nw.ops {
		if o.wire != nil {
			depth = wiring.Apply(o.wire, depth)
			continue
		}
		for _, c := range o.cmps {
			d := max(depth[c.I], depth[c.J]) + 1
			depth[c.I], depth[c.J] = d, d
		}
	}
	m := 0
	for _, d := range depth {
		m = max(m, d)
	}
	return m
}

// Stages returns the number of explicit ops that are comparator stages.
func (nw *Network) Stages() int {
	s := 0
	for _, o := range nw.ops {
		if o.wire == nil {
			s++
		}
	}
	return s
}

// Apply routes an arbitrary ordered slice through the network, exchanging
// elements at comparators according to less. The input is not modified.
func Apply[T any](nw *Network, in []T, less func(a, b T) bool) []T {
	if len(in) != nw.n {
		panic(fmt.Sprintf("cmpnet %q: Apply with %d inputs, want %d",
			nw.name, len(in), nw.n))
	}
	v := append([]T(nil), in...)
	for _, o := range nw.ops {
		if o.wire != nil {
			v = wiring.Apply(o.wire, v)
			continue
		}
		for _, c := range o.cmps {
			if less(v[c.J], v[c.I]) {
				v[c.I], v[c.J] = v[c.J], v[c.I]
			}
		}
	}
	return v
}

// ApplyInts routes an int slice through the network.
func (nw *Network) ApplyInts(in []int) []int {
	return Apply(nw, in, func(a, b int) bool { return a < b })
}

// ApplyBits routes a binary sequence through the network.
func (nw *Network) ApplyBits(v bitvec.Vector) bitvec.Vector {
	out := Apply(nw, []bitvec.Bit(v), func(a, b bitvec.Bit) bool { return a < b })
	return bitvec.Vector(out)
}

// SortsAllBinary exhaustively checks the zero-one principle premise: the
// network sorts all 2^n binary sequences. By the zero-one principle this
// implies it sorts arbitrary inputs. n must be ≤ 24.
func (nw *Network) SortsAllBinary() bool {
	return bitvec.All(nw.n, func(v bitvec.Vector) bool {
		return nw.ApplyBits(v).IsSorted()
	})
}

// Circuit emits the bit-level netlist of the network: one comparator
// component per comparator, wiring as plain wires.
func (nw *Network) Circuit() *netlist.Circuit {
	b := netlist.NewBuilder(nw.name)
	ws := b.Inputs(nw.n)
	for _, o := range nw.ops {
		if o.wire != nil {
			ws = wiring.Apply(o.wire, ws)
			continue
		}
		for _, c := range o.cmps {
			ws[c.I], ws[c.J] = b.Comparator(ws[c.I], ws[c.J])
		}
	}
	b.SetOutputs(ws)
	return b.MustBuild()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func mustPow2(n int, what string) {
	if !pow2(n) {
		panic(fmt.Sprintf("cmpnet: %s requires a power-of-two size, got %d", what, n))
	}
}

// NumComparators returns the total comparator count (same as Cost).
func (nw *Network) NumComparators() int { return nw.Cost() }

// ApplyBitsWithDead routes v through the network with the comparators
// whose (global, construction-order) index is marked in dead behaving as
// broken: a dead comparator passes its inputs straight through without
// exchanging — the classical fault model of Rudolph's robust sorting
// network [24]. len(dead) may be shorter than the comparator count;
// missing entries mean healthy.
func (nw *Network) ApplyBitsWithDead(v bitvec.Vector, dead []bool) bitvec.Vector {
	if len(v) != nw.n {
		panic(fmt.Sprintf("cmpnet %q: ApplyBitsWithDead with %d inputs, want %d",
			nw.name, len(v), nw.n))
	}
	out := v.Clone()
	idx := 0
	for _, o := range nw.ops {
		if o.wire != nil {
			out = wiring.Apply(o.wire, out)
			continue
		}
		for _, c := range o.cmps {
			broken := idx < len(dead) && dead[idx]
			idx++
			if broken {
				continue
			}
			if out[c.J] < out[c.I] {
				out[c.I], out[c.J] = out[c.J], out[c.I]
			}
		}
	}
	return out
}

// PeriodicBalancedBlocks returns the periodic balanced network with an
// explicit number of blocks (PeriodicBalancedSort uses lg n). Extra blocks
// are the redundancy Rudolph's robustness argument relies on.
func PeriodicBalancedBlocks(n, blocks int) *Network {
	mustPow2(n, "PeriodicBalancedBlocks")
	if blocks < 1 {
		panic(fmt.Sprintf("cmpnet: PeriodicBalancedBlocks(%d, %d)", n, blocks))
	}
	nw := New(n, fmt.Sprintf("periodic-balanced-%d-b%d", n, blocks))
	for b := 0; b < blocks; b++ {
		balancedBlock(nw, lineRange(0, n))
	}
	return nw
}
