// Generic comparator-network → planner-IR lowering: any Network — even
// one handed in as a bare edge list — compiles to the same replayable
// step programs the paper's adaptive engines lower to, and from there
// rides every execution path the repository has built on the IR: scalar
// replay, the 64-lane packed SWAR engine, multi-word wide lanes, batch
// pipelines, stuck-at fault injection, and the serving layer.
//
// The lowering first folds the network's interleaved wiring connections
// away (comparators are rewritten into the physical positions their
// lines currently occupy; the residual output permutation becomes one
// trailing OpPermute), then re-packs the flattened comparator list into
// maximal parallel stages by earliest-fit — a comparator lands in the
// first stage after the last one touching either of its lines — which
// preserves the relative order of every conflicting pair and therefore
// the network's function.
package cmpnet

import (
	"fmt"

	"absort/internal/planner"
	"absort/internal/wiring"
)

// flatten folds every wiring connection into the comparator list: the
// returned comparators act on physical positions, in an order
// functionally equivalent to the network, and final is the residual
// receives-from output permutation (nil when it is the identity).
func (nw *Network) flatten() (cmps []Comparator, final wiring.Perm) {
	// phys[j] = the physical position currently holding the value network
	// position j sees: comparator stages act through it, wirings update it
	// instead of moving data.
	phys := wiring.Identity(nw.n)
	for _, o := range nw.ops {
		if o.wire != nil {
			phys = wiring.Compose(phys, o.wire)
			continue
		}
		for _, c := range o.cmps {
			cmps = append(cmps, Comparator{I: phys[c.I], J: phys[c.J]})
		}
	}
	for j, src := range phys {
		if j != src {
			return cmps, phys
		}
	}
	return cmps, nil
}

// parallelizeCmps packs a flat comparator list into maximal parallel
// stages by earliest fit: each comparator joins the first stage after
// the last stage touching either of its lines, preserving the relative
// order of conflicting comparators.
func parallelizeCmps(n int, cmps []Comparator) [][]Comparator {
	last := make([]int, n) // last[l] = 1 + index of the last stage touching l
	var stages [][]Comparator
	for _, c := range cmps {
		s := max(last[c.I], last[c.J])
		if s == len(stages) {
			stages = append(stages, nil)
		}
		stages[s] = append(stages[s], c)
		last[c.I], last[c.J] = s+1, s+1
	}
	return stages
}

// LowerTo emits the network as planner-IR steps over the window
// [lo, lo+n): one OpCmpPair per comparator in stage-parallel order, and
// one trailing OpPermute when the network's wirings leave a residual
// output permutation. The builder's ambient tag layout applies — the
// comparators order by whatever tag bit the surrounding program has
// selected — so a network works both standalone (CompileNetwork) and as
// one window of a larger engine lowering.
func (nw *Network) LowerTo(b *planner.Builder, lo int32) {
	cmps, final := nw.flatten()
	for _, stage := range parallelizeCmps(nw.n, cmps) {
		for _, c := range stage {
			b.CmpPair(lo+int32(c.I), lo+int32(c.J))
		}
	}
	if final != nil {
		perm := make([]int32, nw.n)
		for j, src := range final {
			perm[j] = int32(src)
		}
		b.Permute(lo, lo+int32(nw.n), perm)
	}
}

// ParallelDepth returns the stage count of the lowering's earliest-fit
// re-packing — the depth the compiled program realizes, which can beat
// the construction's explicit stage grouping.
func (nw *Network) ParallelDepth() int {
	cmps, _ := nw.flatten()
	return len(parallelizeCmps(nw.n, cmps))
}

// CompileNetwork lowers the network to a standalone compiled program on
// the concentrator tag layout (tag at packet-word bit 63). Widths that
// are not powers of two pad up: the pad positions carry no steps and
// ride through untouched, so callers slice the first n outputs.
func CompileNetwork(nw *Network) *planner.Program {
	pn := 1
	for pn < nw.n {
		pn *= 2
	}
	var b planner.Builder
	nw.LowerTo(&b, 0)
	return b.Compile(planner.Layout{N: pn, FrontPlanes: 1, TagShift: 63, TagPlane: 0})
}

// FromComparators builds a single-comparator-per-op network from a bare
// edge list — the minimal engine definition — returning the typed
// *LineError (instead of panicking) on an invalid pair, since edge
// lists typically arrive as data rather than code. Stage structure is
// recovered at lowering time by the earliest-fit parallelizer.
func FromComparators(n int, name string, pairs [][2]int) (nw *Network, err error) {
	if n <= 0 {
		return nil, fmt.Errorf("cmpnet: FromComparators(%d, %q): need n > 0", n, name)
	}
	defer func() {
		if r := recover(); r != nil {
			le, ok := r.(*LineError)
			if !ok {
				panic(r)
			}
			nw, err = nil, le
		}
	}()
	nw = New(n, name)
	for _, pr := range pairs {
		nw.AddStage(Comparator{I: pr[0], J: pr[1]})
	}
	return nw, nil
}
