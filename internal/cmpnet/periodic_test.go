package cmpnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"absort/internal/bitvec"
)

// TestPeriodicBalancedSorts checks the Dowd et al. network sorts all
// binary sequences (zero-one ⇒ all inputs).
func TestPeriodicBalancedSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		if !PeriodicBalancedSort(n).SortsAllBinary() {
			t.Errorf("periodic balanced n=%d is not a sorting network", n)
		}
	}
}

// TestPeriodicBalancedParams checks cost (n/2)lg²n and depth lg²n.
func TestPeriodicBalancedParams(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		nw := PeriodicBalancedSort(n)
		lg := 0
		for 1<<uint(lg) < n {
			lg++
		}
		if c := nw.Cost(); c != n/2*lg*lg {
			t.Errorf("n=%d: periodic cost %d, want %d", n, c, n/2*lg*lg)
		}
		if d := nw.Depth(); d != lg*lg {
			t.Errorf("n=%d: periodic depth %d, want %d", n, d, lg*lg)
		}
	}
}

// TestPeriodicBalancedIsPeriodic verifies the defining property: the
// network is lg n repetitions of one block, so feeding any input through
// the full network t ≥ 1 extra times leaves the (sorted) output fixed.
func TestPeriodicBalancedIsPeriodic(t *testing.T) {
	nw := PeriodicBalancedSort(16)
	rng := rand.New(rand.NewSource(179))
	for i := 0; i < 100; i++ {
		v := bitvec.Random(rng, 16)
		once := nw.ApplyBits(v)
		twice := nw.ApplyBits(once)
		if !once.Equal(twice) {
			t.Fatalf("network not idempotent on %s: %s then %s", v, once, twice)
		}
	}
}

// TestHybridOEMSorts checks the sort/merge distribution family across
// block sizes (the Section III-A reader exercise).
func TestHybridOEMSorts(t *testing.T) {
	for _, n := range []int{8, 16} {
		for b := 2; b <= n; b *= 2 {
			if !HybridOEMSort(n, b).SortsAllBinary() {
				t.Errorf("hybrid n=%d b=%d is not a sorting network", n, b)
			}
		}
	}
}

// TestHybridOEMWordLevel: the hybrid family sorts arbitrary words (the
// balanced block merges shuffled sorted word sequences).
func TestHybridOEMWordLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for _, b := range []int{2, 8, 32} {
		nw := HybridOEMSort(32, b)
		for i := 0; i < 100; i++ {
			in := make([]int, 32)
			for j := range in {
				in[j] = rng.Intn(100)
			}
			if out := nw.ApplyInts(in); !sort.IntsAreSorted(out) {
				t.Fatalf("b=%d: hybrid failed on %v: %v", b, in, out)
			}
		}
	}
}

// TestHybridOEMEndpoints: b=n degenerates to pure Batcher (same cost);
// b=2 matches the alternative OEM construction's cost.
func TestHybridOEMEndpoints(t *testing.T) {
	n := 64
	if got, want := HybridOEMSort(n, n).Cost(), OddEvenMergeSort(n).Cost(); got != want {
		t.Errorf("b=n: hybrid cost %d != Batcher %d", got, want)
	}
	if got, want := HybridOEMSort(n, 2).Cost(), AlternativeOEMSort(n).Cost(); got != want {
		t.Errorf("b=2: hybrid cost %d != alternative OEM %d", got, want)
	}
}

// TestHybridOEMTradeoffShape documents the trade-off: moving work from the
// merging side (balanced blocks, (m/2)lg m per merge) to the sorting side
// (Batcher blocks) lowers total comparator count monotonically in b for
// binary sorting... measured, not assumed: cost(b) is monotone
// non-increasing in b at n=64.
func TestHybridOEMTradeoffShape(t *testing.T) {
	n := 64
	prev := -1
	for b := 2; b <= n; b *= 2 {
		c := HybridOEMSort(n, b).Cost()
		if prev >= 0 && c > prev {
			t.Errorf("cost increased from b=%d (%d) to b=%d (%d)", b/2, prev, b, c)
		}
		prev = c
	}
}

func TestHybridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HybridOEMSort(16, 1) did not panic")
		}
	}()
	HybridOEMSort(16, 1)
}

// TestDiagram checks the ASCII rendering of Fig. 1 contains the expected
// structure.
func TestDiagram(t *testing.T) {
	d := Fig1().Diagram()
	for _, want := range []string{"fig1-4-input", "cost=5", "depth=3", "●"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
	// Four numbered lines.
	for i := 0; i < 4; i++ {
		if !strings.Contains(d, fmt.Sprintf("%2d ", i)) {
			t.Errorf("diagram missing line %d:\n%s", i, d)
		}
	}
	// A network with wiring shows the permutation note.
	d2 := AlternativeOEMSort(4).Diagram()
	if !strings.Contains(d2, "wiring") {
		t.Errorf("diagram missing wiring note:\n%s", d2)
	}
}
