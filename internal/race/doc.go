// Package race reports whether the race detector is enabled, mirroring
// the standard library's internal/race. Tests that pin timing floors or
// zero-allocation contracts consult Enabled: race instrumentation slows
// packed-word loops far more than allocation-heavy paths (distorting
// measured ratios), and sync.Pool deliberately drops a fraction of Puts
// under the detector, so pooled paths allocate.
package race
