// Package boolsort implements the O(n)-cost, O(lg n)-depth Boolean sorting
// circuits of Muller–Preparata [17] and Wegener [26] that Section I of the
// paper contrasts its networks with: "These circuits cannot carry, or move
// the inputs through, however; they generate only sorted bits at their
// outputs."
//
// The circuit counts the input's 1s with a carry-save adder tree and
// decodes the count into a thermometer code, which *is* the ascending
// sorted output. Because the output bits are synthesized rather than
// routed, the circuit cannot serve as a concentrator or permuter — the
// limitation that motivates the paper's adaptive switching networks. It is
// included here as the cost/depth reference point of that comparison.
package boolsort

import (
	"fmt"

	"absort/internal/core"
	"absort/internal/netlist"
	"absort/internal/prefixadd"
)

// BuildThermometer appends a binary-to-thermometer decoder for the
// little-endian value x: output t_i = [x > i] for i = 0..m-1. Recursive
// construction on the most significant bit; cost O(m), depth O(lg m + lg w).
func BuildThermometer(b *netlist.Builder, x []netlist.Wire, m int) []netlist.Wire {
	if m <= 0 {
		return nil
	}
	if len(x) == 0 {
		// Value is 0: no threshold is exceeded.
		t := make([]netlist.Wire, m)
		zero := b.Const(0)
		for i := range t {
			t[i] = zero
		}
		return t
	}
	w := len(x)
	msb := x[w-1]
	half := 1 << uint(w-1)
	if m <= half {
		// Thresholds below 2^(w-1): exceeded if the MSB is set, or the
		// low part already exceeds them.
		low := BuildThermometer(b, x[:w-1], m)
		t := make([]netlist.Wire, m)
		for i := range t {
			t[i] = b.Or(msb, low[i])
		}
		return t
	}
	low := BuildThermometer(b, x[:w-1], half)
	t := make([]netlist.Wire, m)
	for i := 0; i < half; i++ {
		t[i] = b.Or(msb, low[i])
	}
	hiCount := m - half
	if hiCount > half {
		hiCount = half
	}
	for i := 0; i < hiCount; i++ {
		// Threshold half + i: needs the MSB and the low part above i.
		t[half+i] = b.And(msb, low[i])
	}
	// Thresholds ≥ 2^w can never be exceeded.
	if m > 2*half {
		zero := b.Const(0)
		for i := 2 * half; i < m; i++ {
			t[i] = zero
		}
	}
	return t
}

// Circuit builds the n-input Boolean sorting circuit: outputs are the
// ascending sort of the input bits. Cost O(n), depth O(lg n).
func Circuit(n int) *netlist.Circuit {
	if !core.IsPow2(n) {
		panic(fmt.Sprintf("boolsort: Circuit(%d): n must be a power of two", n))
	}
	b := netlist.NewBuilder(fmt.Sprintf("boolsort-%d", n))
	in := b.Inputs(n)
	count := prefixadd.BuildPopCountCSA(b, in)
	// t_i = [count > i]; ascending output bit j is 1 iff count ≥ n − j,
	// i.e. count > n − j − 1, i.e. t_{n-1-j}.
	t := BuildThermometer(b, count, n)
	out := make([]netlist.Wire, n)
	for j := 0; j < n; j++ {
		out[j] = t[n-1-j]
	}
	b.SetOutputs(out)
	return b.MustBuild()
}
