package boolsort

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/core"
	"absort/internal/netlist"
	"absort/internal/prefixadd"
	"absort/internal/verify"
)

// TestBoolsortExhaustive: the counting circuit sorts every binary input.
// The sweep enumerates inputs 64 at a time through the compiled wide
// engine (verify.SortsAllCircuit) and keeps a scalar interpreter anchor
// per size for engines agreement.
func TestBoolsortExhaustive(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		c := Circuit(n)
		if res := verify.SortsAllCircuit(c, verify.Options{}); !res.OK {
			t.Errorf("n=%d: boolsort(%s) = %s, want sorted ascending",
				n, res.Counterexample, res.Got)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 16; i++ {
			v := bitvec.Random(rng, n)
			if got := c.Eval(v); !got.Equal(v.Sorted()) {
				t.Errorf("n=%d: boolsort(%s) = %s, want %s", n, v, got, v.Sorted())
			}
		}
	}
}

// TestBoolsortRandomWide: large instances.
func TestBoolsortRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for _, n := range []int{64, 256, 1024} {
		c := Circuit(n)
		for i := 0; i < 40; i++ {
			v := bitvec.Random(rng, n)
			if got := c.Eval(v); !got.Equal(v.Sorted()) {
				t.Fatalf("n=%d: boolsort failed", n)
			}
		}
	}
}

// TestBoolsortLinearCostLogDepth checks the Section I reference point: the
// circuit is O(n) cost and O(lg n) depth — strictly better than any
// carrying network, which is exactly why the paper must exclude it ("these
// circuits cannot carry, or move the inputs through").
func TestBoolsortLinearCostLogDepth(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		st := Circuit(n).Stats()
		lg := core.Lg(n)
		if st.UnitCost > 20*n {
			t.Errorf("n=%d: boolsort cost %d not O(n) (> 20n)", n, st.UnitCost)
		}
		if st.UnitDepth > 4*lg+16 {
			t.Errorf("n=%d: boolsort depth %d not O(lg n) (> 4 lg n + 16)", n, st.UnitDepth)
		}
	}
}

// TestBoolsortDoesNotRoute documents the structural limitation: the
// circuit has no switching components at all — it cannot carry payloads.
func TestBoolsortDoesNotRoute(t *testing.T) {
	st := Circuit(64).Stats()
	for _, kind := range []netlist.Kind{
		netlist.KindComparator, netlist.KindSwitch2x2,
		netlist.KindMux21, netlist.KindDemux12, netlist.KindSwitch4x4,
	} {
		if st.Counts[kind] != 0 {
			t.Errorf("boolsort contains %d %v components; it should be pure logic",
				st.Counts[kind], kind)
		}
	}
}

// TestThermometer checks the decoder against all values at several widths.
func TestThermometer(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5} {
		for m := 1; m <= 1<<uint(w)+2; m += 3 {
			b := netlist.NewBuilder("thermo")
			x := b.Inputs(w)
			b.SetOutputs(BuildThermometer(b, x, m))
			c := b.MustBuild()
			for val := 0; val < 1<<uint(w); val++ {
				got := c.Eval(bitvec.Vector(prefixadd.ToBits(val, w)))
				for i := 0; i < m; i++ {
					want := bitvec.Bit(0)
					if val > i {
						want = 1
					}
					if got[i] != want {
						t.Fatalf("w=%d m=%d val=%d: t[%d] = %d, want %d",
							w, m, val, i, got[i], want)
					}
				}
			}
		}
	}
}

// TestThermometerZeroWidth: decoding an empty value yields all-zero
// thresholds.
func TestThermometerZeroWidth(t *testing.T) {
	b := netlist.NewBuilder("thermo0")
	_ = b.Inputs(1)
	outs := BuildThermometer(b, nil, 3)
	b.SetOutputs(outs)
	c := b.MustBuild()
	got := c.Eval(bitvec.MustFromString("1"))
	if got.String() != "000" {
		t.Errorf("zero-width thermometer = %s", got)
	}
	if BuildThermometer(b, nil, 0) != nil {
		t.Error("m=0 should return nil")
	}
}

func TestCircuitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Circuit(12) did not panic")
		}
	}()
	Circuit(12)
}
