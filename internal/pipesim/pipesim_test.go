package pipesim

import "testing"

// TestPipesimSemantics checks the simulator primitives directly.
func TestPipesimSemantics(t *testing.T) {
	sim := &Sim{}
	b := NewBlock("b", 5)
	if b.Name() != "b" || b.Latency() != 5 {
		t.Error("accessors")
	}
	// First job: enters at 0, done at 5.
	if done := sim.Run(b, 0); done != 5 {
		t.Errorf("first job done at %d", done)
	}
	// Second job ready at 0 enters at 1 (initiation interval 1).
	if done := sim.Run(b, 0); done != 6 {
		t.Errorf("second job done at %d", done)
	}
	// Third job ready at 10 enters at 10.
	if done := sim.Run(b, 10); done != 15 {
		t.Errorf("third job done at %d", done)
	}
	if b.Jobs() != 3 {
		t.Errorf("jobs = %d", b.Jobs())
	}
	if sim.Makespan() != 15 {
		t.Errorf("makespan = %d", sim.Makespan())
	}
	// Chained sequence: b enters at 11 (lastStart 10 + 1), done 16; c
	// enters at 16, done 18.
	c := NewBlock("c", 2)
	if done := sim.RunSequence(0, b, c); done != 18 {
		t.Errorf("sequence done at %d, want 18", done)
	}
}

// TestPipesimPanics covers validation.
func TestPipesimPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative latency", func() { NewBlock("x", -1) })
	mustPanic("negative ready", func() {
		sim := &Sim{}
		sim.Run(NewBlock("x", 1), -3)
	})
}
