// Package pipesim is a small discrete-event simulator for pipelined
// hardware schedules: each Block is a resource with a fixed latency (its
// unit depth) and an initiation interval of one unit delay — a new job may
// enter one delay after the previous one entered, the pipelining
// assumption of Section III-C ("the sorting network is viewed as a
// lg²(n/k) segment pipeline, where each segment is a constant fanin, unit
// delay circuit").
//
// It is used to validate the fish sorter's pipelined sorting-time formula
// (equations (25)–(26)) against an explicit schedule of the clocked
// machine's real netlist depths.
package pipesim

import "fmt"

// Block is a pipelined resource.
type Block struct {
	name      string
	latency   int
	lastStart int // start time of the most recent job; -1 initially
	jobs      int
}

// NewBlock returns a pipelined block with the given latency in unit
// delays.
func NewBlock(name string, latency int) *Block {
	if latency < 0 {
		panic(fmt.Sprintf("pipesim: block %q with negative latency", name))
	}
	return &Block{name: name, latency: latency, lastStart: -1}
}

// Name returns the block's name; Latency its configured latency.
func (b *Block) Name() string { return b.name }

// Latency returns the block's configured latency.
func (b *Block) Latency() int { return b.latency }

// Jobs returns how many jobs have entered the block.
func (b *Block) Jobs() int { return b.jobs }

// Sim accumulates a schedule and its makespan.
type Sim struct {
	makespan int
}

// Run schedules one job on block b whose inputs are ready at time ready,
// and returns its completion time. The job enters at
// max(ready, lastStart+1) — the block accepts one new job per unit delay —
// and completes latency units later.
func (s *Sim) Run(b *Block, ready int) int {
	if ready < 0 {
		panic("pipesim: negative ready time")
	}
	start := ready
	if b.lastStart >= 0 && b.lastStart+1 > start {
		start = b.lastStart + 1
	}
	b.lastStart = start
	b.jobs++
	done := start + b.latency
	if done > s.makespan {
		s.makespan = done
	}
	return done
}

// RunSequence schedules a job through a chain of blocks (the output of one
// feeding the next) and returns the final completion time.
func (s *Sim) RunSequence(ready int, blocks ...*Block) int {
	t := ready
	for _, b := range blocks {
		t = s.Run(b, t)
	}
	return t
}

// Makespan returns the completion time of the latest job scheduled so far.
func (s *Sim) Makespan() int { return s.makespan }
