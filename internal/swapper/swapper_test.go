package swapper

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

func TestTwoWayBehavioral(t *testing.T) {
	v := bitvec.MustFromString("00001111")
	if got := TwoWay(v, 0); !got.Equal(v) {
		t.Errorf("TwoWay ctrl=0 = %s", got)
	}
	if got := TwoWay(v, 1).String(); got != "11110000" {
		t.Errorf("TwoWay ctrl=1 = %s", got)
	}
}

// TestTwoWayCircuitMatchesBehavior cross-validates the Fig. 2(a) netlist
// construction against the behavioral swapper for all inputs at n=8 and
// random inputs at larger n.
func TestTwoWayCircuitMatchesBehavior(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c := TwoWayCircuit(n)
		for ctrl := bitvec.Bit(0); ctrl <= 1; ctrl++ {
			bitvec.All(n, func(v bitvec.Vector) bool {
				in := append(bitvec.Vector{ctrl}, v...)
				got := c.Eval(in)
				want := TwoWay(v, ctrl)
				if !got.Equal(want) {
					t.Errorf("n=%d ctrl=%d in=%s: circuit %s, behavioral %s",
						n, ctrl, v, got, want)
					return false
				}
				return true
			})
		}
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{16, 32, 64} {
		c := TwoWayCircuit(n)
		for i := 0; i < 50; i++ {
			v := bitvec.Random(rng, n)
			ctrl := bitvec.Bit(rng.Intn(2))
			in := append(bitvec.Vector{ctrl}, v...)
			if got, want := c.Eval(in), TwoWay(v, ctrl); !got.Equal(want) {
				t.Fatalf("n=%d: circuit %s != behavioral %s", n, got, want)
			}
		}
	}
}

// TestTwoWayCost checks the paper's Fig. 2(a) parameters: cost n/2, depth 1.
func TestTwoWayCost(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256} {
		s := TwoWayCircuit(n).Stats()
		if s.UnitCost != n/2 {
			t.Errorf("n=%d: two-way swapper unit cost %d, want %d", n, s.UnitCost, n/2)
		}
		if s.UnitDepth != 1 {
			t.Errorf("n=%d: two-way swapper unit depth %d, want 1", n, s.UnitDepth)
		}
		if s.Counts[netlist.KindSwitch2x2] != n/2 {
			t.Errorf("n=%d: %d switches, want %d", n, s.Counts[netlist.KindSwitch2x2], n/2)
		}
	}
}

func TestFourWayBehavioral(t *testing.T) {
	v := bitvec.MustFromString("00011011")
	perms := QuarterPerms{
		{0, 1, 2, 3},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
		{3, 2, 1, 0},
	}
	wants := []string{"00011011", "01001110", "10110001", "11100100"}
	for sel := 0; sel < 4; sel++ {
		if got := FourWay(v, perms, sel).String(); got != wants[sel] {
			t.Errorf("FourWay sel=%d = %s, want %s", sel, got, wants[sel])
		}
	}
}

func TestFourWayCircuitMatchesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, perms := range []QuarterPerms{INSwap, OUTSwap} {
		for _, n := range []int{4, 8, 16, 32} {
			c := FourWayCircuit(n, perms)
			for i := 0; i < 60; i++ {
				v := bitvec.Random(rng, n)
				sel := rng.Intn(4)
				in := append(bitvec.Vector{bitvec.Bit(sel >> 1), bitvec.Bit(sel & 1)}, v...)
				got := c.Eval(in)
				want := FourWay(v, perms, sel)
				if !got.Equal(want) {
					t.Fatalf("n=%d sel=%d in=%s: circuit %s != behavioral %s",
						n, sel, v, got, want)
				}
			}
		}
	}
}

// TestFourWayCost checks the paper's Fig. 2(b) parameters: cost n
// (n/4 4×4 switches at 4 units each), depth 1.
func TestFourWayCost(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		s := FourWayCircuit(n, INSwap).Stats()
		if s.UnitCost != n {
			t.Errorf("n=%d: four-way swapper unit cost %d, want %d", n, s.UnitCost, n)
		}
		if s.UnitDepth != 1 {
			t.Errorf("n=%d: four-way swapper unit depth %d, want 1", n, s.UnitDepth)
		}
	}
}

// TestINSwapBringsBisortedPairToMiddle verifies, for every bisorted input
// and its Table I select case, that after IN-SWAP the middle half is
// bisorted and the outer quarters are the clean ones claimed by Table I.
func TestINSwapBringsBisortedPairToMiddle(t *testing.T) {
	n := 16
	bitvec.AllBisorted(n, func(v bitvec.Vector) bool {
		s1 := v[n/4]   // uppermost element of X_q2
		s0 := v[3*n/4] // uppermost element of X_q4
		sel := int(2*s1 + s0)
		w := FourWay(v, INSwap, sel)
		q := w.Quarters()
		mid := bitvec.Concat(q[1], q[2])
		if !mid.IsBisorted() {
			t.Errorf("v=%s sel=%d: middle %s not bisorted", v, sel, mid)
			return false
		}
		if !q[0].IsClean() && !q[0].IsSorted() {
			t.Errorf("v=%s sel=%d: top quarter %s unusable", v, sel, q[0])
			return false
		}
		switch sel {
		case 0: // q1,q3 all 0s
			if q[0].Ones() != 0 || q[3].Ones() != 0 {
				t.Errorf("v=%s sel=00: outer quarters %s,%s not clean-0", v, q[0], q[3])
				return false
			}
		case 1: // q1 all 0s, q4 all 1s
			if q[0].Ones() != 0 || q[3].Zeros() != 0 {
				t.Errorf("v=%s sel=01: outer quarters %s,%s", v, q[0], q[3])
				return false
			}
		case 2: // q3 all 0s, q2 all 1s
			if q[0].Ones() != 0 || q[3].Zeros() != 0 {
				t.Errorf("v=%s sel=10: outer quarters %s,%s", v, q[0], q[3])
				return false
			}
		case 3: // q2,q4 all 1s
			if q[0].Zeros() != 0 || q[3].Zeros() != 0 {
				t.Errorf("v=%s sel=11: outer quarters %s,%s not clean-1", v, q[0], q[3])
				return false
			}
		}
		return true
	})
}

// TestMuxMergeCase verifies end-to-end per-case routing: IN-SWAP, an ideal
// merge of the middle half, then OUT-SWAP yields the fully sorted sequence.
// This validates the IN/OUT configuration pair against Table I exhaustively.
func TestMuxMergeCase(t *testing.T) {
	n := 16
	bitvec.AllBisorted(n, func(v bitvec.Vector) bool {
		sel := int(2*v[n/4] + v[3*n/4])
		w := FourWay(v, INSwap, sel)
		q := w.Quarters()
		merged := bitvec.Concat(q[1], q[2]).Sorted() // ideal middle merge
		x := bitvec.Concat(q[0], merged[:n/4], merged[n/4:], q[3])
		y := FourWay(x, OUTSwap, sel)
		if !y.Equal(v.Sorted()) {
			t.Errorf("v=%s sel=%d: merge pipeline gave %s, want %s",
				v, sel, y, v.Sorted())
			return false
		}
		return true
	})
}

func TestKSwapSelects(t *testing.T) {
	v := bitvec.MustFromString("1111/0001/0011/0111")
	ctrl := KSwapSelects(v, 4)
	want := []bitvec.Bit{1, 0, 1, 1}
	for i := range want {
		if ctrl[i] != want[i] {
			t.Fatalf("KSwapSelects = %v, want %v", ctrl, want)
		}
	}
}

// TestKSwapTheorem4 verifies Theorem 4 via the k-SWAP: for every k-sorted
// sequence, after k-SWAP the upper half is clean k-sorted and the lower
// half is k-sorted.
func TestKSwapTheorem4(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{8, 2}, {8, 4}, {16, 4}, {16, 2}, {12, 2}} {
		bitvec.AllKSorted(tc.n, tc.k, func(v bitvec.Vector) bool {
			w := KSwap(v, KSwapSelects(v, tc.k))
			u, l := w.Halves()
			if !u.IsCleanKSorted(tc.k) {
				t.Errorf("n=%d k=%d v=%s: upper %s not clean %d-sorted",
					tc.n, tc.k, v, u, tc.k)
				return false
			}
			if !l.IsKSorted(tc.k) {
				t.Errorf("n=%d k=%d v=%s: lower %s not %d-sorted",
					tc.n, tc.k, v, l, tc.k)
				return false
			}
			if u.Ones()+l.Ones() != v.Ones() {
				t.Errorf("n=%d k=%d v=%s: k-SWAP not a permutation", tc.n, tc.k, v)
				return false
			}
			return true
		})
	}
}

// TestKSwapPaperExample reproduces Example 4 / the Fig. 8 k-SWAP step:
// 1111/0001/0011/0111 splits into a clean 4-sorted upper half and a
// 4-sorted lower half.
func TestKSwapPaperExample(t *testing.T) {
	v := bitvec.MustFromString("1111/0001/0011/0111")
	w := KSwap(v, KSwapSelects(v, 4))
	u, l := w.Halves()
	if !u.IsCleanKSorted(4) {
		t.Errorf("upper %s not clean 4-sorted", u.StringGrouped(2))
	}
	if !l.IsKSorted(4) {
		t.Errorf("lower %s not 4-sorted", l.StringGrouped(2))
	}
	// Per Example 4: clean parts {11, 00, 11, 11}, remaining {11, 01, 00, 01}.
	if u.String() != "11001111" {
		t.Errorf("upper = %s, want 11001111", u)
	}
	if l.String() != "11010001" {
		t.Errorf("lower = %s, want 11010001", l)
	}
}

func TestBuildKSwapMatchesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ n, k int }{{8, 2}, {16, 4}, {32, 4}, {32, 8}} {
		b := netlist.NewBuilder("kswap")
		ctrl := b.Inputs(tc.k)
		in := b.Inputs(tc.n)
		b.SetOutputs(BuildKSwap(b, ctrl, in))
		c := b.MustBuild()
		if s := c.Stats(); s.UnitCost != tc.n/2 || s.UnitDepth != 1 {
			t.Errorf("n=%d k=%d: k-SWAP cost/depth = %d/%d, want %d/1",
				tc.n, tc.k, s.UnitCost, s.UnitDepth, tc.n/2)
		}
		for i := 0; i < 50; i++ {
			v := bitvec.Random(rng, tc.n)
			cb := make([]bitvec.Bit, tc.k)
			for j := range cb {
				cb[j] = bitvec.Bit(rng.Intn(2))
			}
			got := c.Eval(bitvec.Concat(cb, v))
			want := KSwap(v, cb)
			if !got.Equal(want) {
				t.Fatalf("n=%d k=%d: circuit %s != behavioral %s", tc.n, tc.k, got, want)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("TwoWay odd", func() { TwoWay(bitvec.New(3), 0) })
	mustPanic("FourWay n%4", func() { FourWay(bitvec.New(6), INSwap, 0) })
	mustPanic("FourWay sel", func() { FourWay(bitvec.New(8), INSwap, 4) })
	mustPanic("KSwap", func() { KSwap(bitvec.New(8), []bitvec.Bit{0, 0, 0}) })
	mustPanic("BuildTwoWay odd", func() {
		b := netlist.NewBuilder("x")
		BuildTwoWay(b, b.Input(), b.Inputs(3))
	})
	mustPanic("BuildFourWay", func() {
		b := netlist.NewBuilder("x")
		BuildFourWay(b, b.Input(), b.Input(), b.Inputs(6), INSwap)
	})
	mustPanic("BuildKSwap", func() {
		b := netlist.NewBuilder("x")
		BuildKSwap(b, b.Inputs(3), b.Inputs(8))
	})
}
