// Package swapper implements the controlled swapping networks of Section II
// of the paper: the two-way swapper of Fig. 2(a), the four-way swapper of
// Fig. 2(b) (including the IN-SWAP and OUT-SWAP configurations used by the
// mux-merger binary sorter), and the k-SWAP stage of Section III-C's fish
// binary sorter.
//
// Each swapper has both a behavioral implementation (operating directly on
// bitvec.Vector) and a netlist builder that emits the paper's exact
// construction: a k-way shuffle connection, one stage of switches, and the
// reversed shuffle connection.
package swapper

import (
	"fmt"

	"absort/internal/bitvec"
	"absort/internal/netlist"
	"absort/internal/wiring"
)

// TwoWay swaps the two halves of v when ctrl is 1, behaviorally.
// Cost n/2, depth 1 in the network realization.
func TwoWay(v bitvec.Vector, ctrl bitvec.Bit) bitvec.Vector {
	if len(v)%2 != 0 {
		panic("swapper: TwoWay of odd-length vector")
	}
	if ctrl == 0 {
		return v.Clone()
	}
	u, l := v.Halves()
	return bitvec.Concat(l, u)
}

// BuildTwoWay appends an n-input two-way swapper to b: a two-way shuffle
// connection, a single stage of n/2 2×2 switches sharing ctrl, and a
// reversed two-way shuffle connection (Fig. 2(a)).
func BuildTwoWay(b *netlist.Builder, ctrl netlist.Wire, in []netlist.Wire) []netlist.Wire {
	n := len(in)
	if n%2 != 0 {
		panic("swapper: BuildTwoWay of odd width")
	}
	sh := wiring.Apply(wiring.PerfectShuffle(n), in)
	mid := make([]netlist.Wire, n)
	for i := 0; i < n/2; i++ {
		mid[2*i], mid[2*i+1] = b.Switch(ctrl, sh[2*i], sh[2*i+1])
	}
	return wiring.Apply(wiring.Unshuffle(n), mid)
}

// TwoWayCircuit builds a standalone n-input two-way swapper circuit whose
// first input is the control signal followed by the n data inputs.
func TwoWayCircuit(n int) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("two-way-swapper-%d", n))
	ctrl := b.Input()
	in := b.Inputs(n)
	b.SetOutputs(BuildTwoWay(b, ctrl, in))
	return b.MustBuild()
}

// QuarterPerms configures a four-way swapper: QuarterPerms[sel][i] is the
// input quarter that output quarter i receives when the two select bits
// equal sel (sel = 2*s1 + s0).
type QuarterPerms [4]netlist.Perm4

// INSwap is the four-way swapper configuration used on the input side of
// the mux-merger of Fig. 6 / Table I. With the recursive half-size merger
// occupying the middle two quarters, the arrangement per select case is:
//
//	sel 00: (q1, q4, q2, q3) — q1,q3 clean-0; q2*q4 to the middle merger
//	sel 01: (q1, q2, q3, q4) — q1 clean-0, q4 clean-1; q2*q3 to the merger
//	sel 10: (q3, q4, q1, q2) — q3 clean-0, q2 clean-1; q4*q1 to the merger
//	sel 11: (q2, q1, q3, q4) — q2,q4 clean-1; q1*q3 to the merger
//
// The paper's Fig. 6 lists the corresponding cycle set
// {(1)(23)(4), (1)(234), (13)(24), (134)(2)}; the exact cycle-to-case
// assignment depends on figure conventions (see DESIGN.md §4). The swapper
// remains a four-way swapper with four fixed quarter permutations: cost n,
// depth 1, so all recurrences of Section III-B hold unchanged.
var INSwap = QuarterPerms{
	{0, 3, 1, 2}, // sel 00
	{0, 1, 2, 3}, // sel 01
	{2, 3, 0, 1}, // sel 10
	{1, 0, 2, 3}, // sel 11
}

// OUTSwap is the four-way swapper configuration on the output side of the
// mux-merger. Like the paper's OUT-SWAP set {(1)(2)(3)(4), (1)(243),
// (13)(24)}, it realizes only three distinct permutations:
//
//	sel 00: (A, D, B, C) — pull the second clean-0 quarter above the merge
//	sel 01: identity
//	sel 10: identity
//	sel 11: (B, C, A, D) — push the first clean-1 quarter below the merge
var OUTSwap = QuarterPerms{
	{0, 3, 1, 2}, // sel 00
	{0, 1, 2, 3}, // sel 01
	{0, 1, 2, 3}, // sel 10
	{1, 2, 0, 3}, // sel 11
}

// FourWay applies the configured quarter permutation for the given select
// value to v, behaviorally. Cost n, depth 1 in the network realization.
func FourWay(v bitvec.Vector, perms QuarterPerms, sel int) bitvec.Vector {
	if len(v)%4 != 0 {
		panic("swapper: FourWay of length not divisible by 4")
	}
	if sel < 0 || sel > 3 {
		panic(fmt.Sprintf("swapper: FourWay select %d", sel))
	}
	q := v.Quarters()
	p := perms[sel]
	return bitvec.Concat(q[p[0]], q[p[1]], q[p[2]], q[p[3]])
}

// BuildFourWay appends an n-input four-way swapper to b: a four-way shuffle
// connection, a single stage of n/4 4×4 switches sharing the two select
// signals, and a reversed four-way shuffle connection (Fig. 2(b)).
func BuildFourWay(b *netlist.Builder, s1, s0 netlist.Wire, in []netlist.Wire, perms QuarterPerms) []netlist.Wire {
	n := len(in)
	if n%4 != 0 {
		panic("swapper: BuildFourWay of width not divisible by 4")
	}
	sh := wiring.Apply(wiring.FourWayShuffle(n), in)
	mid := make([]netlist.Wire, n)
	for i := 0; i < n/4; i++ {
		out := b.Switch4(s1, s0,
			[4]netlist.Wire{sh[4*i], sh[4*i+1], sh[4*i+2], sh[4*i+3]},
			[4]netlist.Perm4(perms))
		copy(mid[4*i:4*i+4], out[:])
	}
	return wiring.Apply(wiring.FourWayShuffle(n).Inverse(), mid)
}

// FourWayCircuit builds a standalone n-input four-way swapper circuit whose
// first two inputs are the select signals (s1, s0) followed by the n data
// inputs.
func FourWayCircuit(n int, perms QuarterPerms) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("four-way-swapper-%d", n))
	s1, s0 := b.Input(), b.Input()
	in := b.Inputs(n)
	b.SetOutputs(BuildFourWay(b, s1, s0, in, perms))
	return b.MustBuild()
}

// KSwap performs the k-SWAP operation of Section III-C behaviorally.
// The input is viewed as k blocks of n/k; block j passes through an
// n/k-input two-way swapper controlled by ctrl[j]. The upper halves of the
// k swappers are collected (in block order) into the upper n/2 outputs and
// the lower halves into the lower n/2 outputs.
//
// With ctrl[j] set to the middle bit of sorted block j, the upper n/2
// outputs form a clean k-sorted sequence and the lower n/2 outputs form a
// k-sorted sequence (Theorem 4).
func KSwap(v bitvec.Vector, ctrl []bitvec.Bit) bitvec.Vector {
	k := len(ctrl)
	if k == 0 || len(v)%(2*k) != 0 {
		panic(fmt.Sprintf("swapper: KSwap of length %d with k=%d", len(v), k))
	}
	blocks := v.Blocks(k)
	half := len(v) / (2 * k)
	upper := make(bitvec.Vector, 0, len(v)/2)
	lower := make(bitvec.Vector, 0, len(v)/2)
	for j, blk := range blocks {
		sw := TwoWay(blk, ctrl[j])
		upper = append(upper, sw[:half]...)
		lower = append(lower, sw[half:]...)
	}
	return bitvec.Concat(upper, lower)
}

// KSwapSelects derives the k-SWAP control bits from a k-sorted input: the
// select of block j is the block's middle bit (the first element of its
// lower half). For an ascending sorted block, middle bit 0 means the upper
// half is clean (all 0s, keep), middle bit 1 means the lower half is clean
// (all 1s, swap up).
func KSwapSelects(v bitvec.Vector, k int) []bitvec.Bit {
	blocks := v.Blocks(k)
	ctrl := make([]bitvec.Bit, k)
	for j, blk := range blocks {
		ctrl[j] = blk[len(blk)/2]
	}
	return ctrl
}

// BuildKSwap appends the k-SWAP stage to b: k two-way swappers of n/k
// inputs each, with per-block control wires, followed by the fixed wiring
// that gathers upper halves into the top n/2 lines. Cost n/2, depth 1.
func BuildKSwap(b *netlist.Builder, ctrl []netlist.Wire, in []netlist.Wire) []netlist.Wire {
	n := len(in)
	k := len(ctrl)
	if k == 0 || n%(2*k) != 0 {
		panic(fmt.Sprintf("swapper: BuildKSwap of width %d with k=%d", n, k))
	}
	bs := n / k
	half := bs / 2
	upper := make([]netlist.Wire, 0, n/2)
	lower := make([]netlist.Wire, 0, n/2)
	for j := 0; j < k; j++ {
		out := BuildTwoWay(b, ctrl[j], in[j*bs:(j+1)*bs])
		upper = append(upper, out[:half]...)
		lower = append(lower, out[half:]...)
	}
	return append(upper, lower...)
}
