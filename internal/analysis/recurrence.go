package analysis

import "absort/internal/core"

// This file audits the paper's recurrences: each equation (1)–(16) is
// solved numerically from its recursive definition and compared with the
// closed form the paper states. Two of the paper's printed solutions
// disagree with their own recurrences (see RecurrenceAudit); the audit
// quantifies both.

// PatchUpCostRec solves equation (3): Cp(n) = 3n/2 + Cp(n/2), Cp(2) = 1.
func PatchUpCostRec(n int) int {
	if n == 2 {
		return 1
	}
	return 3*n/2 + PatchUpCostRec(n/2)
}

// PatchUpDepthRec solves equation (4): Dp(n) = 3 + Dp(n/2), Dp(2) = 1.
func PatchUpDepthRec(n int) int {
	if n == 2 {
		return 1
	}
	return 3 + PatchUpDepthRec(n/2)
}

// PrefixSorterCostRec solves equation (1): C(n) = 2C(n/2) + Ca(lg n) +
// Cp(n), C(2) = 1, with the paper's Ca(w) = 3w prefix-adder cost.
func PrefixSorterCostRec(n int) int {
	if n == 2 {
		return 1
	}
	return 2*PrefixSorterCostRec(n/2) + 3*core.Lg(n) + PatchUpCostRec(n)
}

// PrefixSorterDepthRec solves equation (2): D(n) = D(n/2) + Da(lg n) +
// Dp(n), D(2) = 1, with Da(w) = 2 lg w.
func PrefixSorterDepthRec(n int) int {
	if n == 2 {
		return 1
	}
	lg := core.Lg(n)
	da := 0
	for 1<<uint(da) < lg {
		da++
	}
	return PrefixSorterDepthRec(n/2) + 2*da + PatchUpDepthRec(n)
}

// MuxMergerCostRec solves equation (5): C(n) = 2C(n/2) + Cm(n) with
// Cm(n) = 4n, C(2) = 1 — the paper's idealized merger cost (our exact
// construction has Cm(n) = 4n − 7; see core.MuxMergerMergeCost).
func MuxMergerCostRec(n int) int {
	if n == 2 {
		return 1
	}
	return 2*MuxMergerCostRec(n/2) + 4*n
}

// MuxMergerDepthRec solves equation (6): D(n) = D(n/2) + Dm(n) with
// Dm(n) = 2 lg n, D(2) = 1.
func MuxMergerDepthRec(n int) int {
	if n == 2 {
		return 1
	}
	return MuxMergerDepthRec(n/2) + 2*core.Lg(n)
}

// KWayMergerCostRec solves equation (11) with boundary (15)'s
// Ckm(k,k) = 4k lg k.
func KWayMergerCostRec(n, k int) int {
	if n == k {
		return 4 * k * core.Lg(k)
	}
	return n/2 + 4*k*core.Lg(k) + n + k + KWayMergerCostRec(n/2, k) + 4*n
}

// KWayMergerCostClosed evaluates the paper's closed form (15):
// Ckm(n,k) = 11n − 11k + k lg(n/k) + 4k lg k lg(n/k) + 4k lg k.
func KWayMergerCostClosed(n, k int) int {
	lgk := core.Lg(k)
	lgnk := core.Lg(n / k)
	return 11*n - 11*k + k*lgnk + 4*k*lgk*lgnk + 4*k*lgk
}

// RecurrenceFinding is one row of the audit.
type RecurrenceFinding struct {
	Equation string
	// Recurrence is the numeric solution of the paper's recurrence at n.
	Recurrence int
	// Stated is the paper's printed closed-form value at n.
	Stated int
	// Agrees marks whether the printed solution solves the recurrence.
	Agrees bool
	// Comment explains disagreements.
	Comment string
}

// RecurrenceAudit evaluates every audit row at width n (a power of two).
func RecurrenceAudit(n int) []RecurrenceFinding {
	lg := core.Lg(n)
	rows := []RecurrenceFinding{
		{
			Equation:   "(3) patch-up cost: Cp(n) = 3n/2 + Cp(n/2)",
			Recurrence: PatchUpCostRec(n),
			Stated:     3 * n, // paper: "Cp(n) ≤ 3n"
			Comment:    "paper states an upper bound; holds",
		},
		{
			Equation:   "(4) patch-up depth: Dp(n) = 3 + Dp(n/2)",
			Recurrence: PatchUpDepthRec(n),
			Stated:     lg, // paper: "Dp(n) ≤ lg n"
			Comment:    "paper prints ≤ lg n; the recurrence solves to 3 lg n − 2 (typo)",
		},
		{
			Equation:   "(5) mux-merger sorter cost: C(n) = 2C(n/2) + 4n",
			Recurrence: MuxMergerCostRec(n),
			Stated:     4 * n * lg, // paper: "C(n) = 4n lg n"
			Comment:    "4n lg n − 7n/2-ish; stated form is the leading term",
		},
		{
			Equation:   "(6) mux-merger sorter depth: D(n) = D(n/2) + 2 lg n",
			Recurrence: MuxMergerDepthRec(n),
			Stated:     2 * lg, // paper: "D(n) = 2 lg n"
			Comment:    "paper prints 2 lg n; the recurrence solves to lg²n + lg n − 1 (typo; abstract says O(lg² n))",
		},
		{
			Equation:   "(11)/(15) k-way merger cost, k = lg n",
			Recurrence: KWayMergerCostRec(n, KForSize(n)),
			Stated:     KWayMergerCostClosed(n, KForSize(n)),
			Comment:    "closed form (15) vs recurrence (11)",
		},
	}
	for i := range rows {
		// An "agreement" is the stated value bounding or within 15% of the
		// recurrence solution, our tolerance for dropped lower-order terms.
		r, s := rows[i].Recurrence, rows[i].Stated
		diff := r - s
		if diff < 0 {
			diff = -diff
		}
		rows[i].Agrees = s >= r || diff*100 <= 15*r
	}
	return rows
}
