package analysis

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
)

func TestProfileOnes(t *testing.T) {
	if p := ProfileOnes(nil); p != (OnesProfile{}) {
		t.Errorf("ProfileOnes(nil) = %+v, want zero", p)
	}
	vs := []bitvec.Vector{
		bitvec.MustFromString("0000"),
		bitvec.MustFromString("1111"),
		bitvec.MustFromString("1010"),
	}
	p := ProfileOnes(vs)
	want := OnesProfile{Vectors: 3, Width: 4, Min: 0, Max: 4, Total: 6}
	if p != want {
		t.Fatalf("ProfileOnes = %+v, want %+v", p, want)
	}
	if got := p.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := p.Balance(); got != 0.5 {
		t.Errorf("Balance = %v, want 0.5", got)
	}
}

// TestProfileOnesMatchesScalar cross-checks the packed popcount path
// against a per-bit scalar count on random populations of odd widths.
func TestProfileOnesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 63, 64, 65, 200} {
		vs := make([]bitvec.Vector, 37)
		for i := range vs {
			vs[i] = bitvec.Random(rng, n)
		}
		p := ProfileOnes(vs)
		total, min, max := 0, n+1, 0
		for _, v := range vs {
			ones := 0
			for _, b := range v {
				ones += int(b)
			}
			total += ones
			if ones < min {
				min = ones
			}
			if ones > max {
				max = ones
			}
		}
		if p.Total != total || p.Min != min || p.Max != max {
			t.Errorf("n=%d: ProfileOnes = %+v, scalar total=%d min=%d max=%d", n, p, total, min, max)
		}
	}
}
