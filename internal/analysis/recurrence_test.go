package analysis

import (
	"testing"

	"absort/internal/core"
)

// TestPatchUpRecurrences: closed forms of (3)/(4).
func TestPatchUpRecurrences(t *testing.T) {
	for _, n := range []int{4, 16, 256, 4096} {
		lg := core.Lg(n)
		// Cp(n) = 3n/2 + 3n/4 + ... + 3·2/2... solves to 3n − 5 exactly.
		if got, want := PatchUpCostRec(n), 3*n-5; got != want {
			t.Errorf("n=%d: Cp recurrence = %d, want %d", n, got, want)
		}
		if PatchUpCostRec(n) > 3*n {
			t.Errorf("n=%d: paper bound Cp ≤ 3n violated", n)
		}
		// Dp(n) = 3(lg n − 1) + 1 = 3 lg n − 2.
		if got, want := PatchUpDepthRec(n), 3*lg-2; got != want {
			t.Errorf("n=%d: Dp recurrence = %d, want %d", n, got, want)
		}
	}
}

// TestMuxMergerRecurrences: the (6) depth recurrence really solves to
// Θ(lg² n), not the paper's printed 2 lg n.
func TestMuxMergerRecurrences(t *testing.T) {
	for _, n := range []int{4, 64, 1024} {
		lg := core.Lg(n)
		want := lg*lg + lg - 1 // Σ_{j=2..lg n} 2j + 1
		if got := MuxMergerDepthRec(n); got != want {
			t.Errorf("n=%d: D recurrence = %d, want lg²n+lg n−1 = %d", n, got, want)
		}
		if got := MuxMergerCostRec(n); got > 4*n*lg || got < 4*n*lg-4*n {
			t.Errorf("n=%d: C recurrence = %d outside [4n lg n − 4n, 4n lg n]", n, got)
		}
	}
}

// TestKWayMergerClosedFormMatchesRecurrence: equation (15) solves (11)
// within lower-order slack.
func TestKWayMergerClosedFormMatchesRecurrence(t *testing.T) {
	for _, n := range []int{256, 4096, 65536} {
		k := KForSize(n)
		rec := KWayMergerCostRec(n, k)
		closed := KWayMergerCostClosed(n, k)
		diff := rec - closed
		if diff < 0 {
			diff = -diff
		}
		if diff*20 > rec {
			t.Errorf("n=%d k=%d: recurrence %d vs closed form %d differ > 5%%",
				n, k, rec, closed)
		}
	}
}

// TestRecurrenceAuditFlagsTypos: the audit marks equations (4) and (6) as
// disagreeing with their printed solutions — the two typos EXPERIMENTS.md
// documents — and everything else as agreeing.
func TestRecurrenceAuditFlagsTypos(t *testing.T) {
	rows := RecurrenceAudit(1024)
	if len(rows) != 5 {
		t.Fatalf("%d audit rows", len(rows))
	}
	wantAgree := map[string]bool{
		"(3)": true, "(4)": false, "(5)": true, "(6)": false, "(11)/(15)": true,
	}
	for _, r := range rows {
		for prefix, want := range wantAgree {
			if len(r.Equation) >= len(prefix) && r.Equation[:len(prefix)] == prefix {
				if r.Agrees != want {
					t.Errorf("%s: agrees=%v, want %v (rec %d, stated %d)",
						r.Equation, r.Agrees, want, r.Recurrence, r.Stated)
				}
			}
		}
	}
}

// TestRecurrencesMatchBuiltNetworks ties the audit back to hardware: the
// paper's recurrence solutions bound the measured netlists.
func TestRecurrencesMatchBuiltNetworks(t *testing.T) {
	for _, n := range []int{16, 256} {
		mm := core.NewMuxMergerSorter(n).Circuit().Stats()
		if mm.UnitCost > MuxMergerCostRec(n) {
			t.Errorf("n=%d: measured mux-merger cost %d exceeds recurrence %d",
				n, mm.UnitCost, MuxMergerCostRec(n))
		}
		if mm.UnitDepth > MuxMergerDepthRec(n) {
			t.Errorf("n=%d: measured mux-merger depth %d exceeds recurrence %d",
				n, mm.UnitDepth, MuxMergerDepthRec(n))
		}
	}
}
