package analysis

// Empirical input-population statistics. The structural analyses elsewhere
// in this package are closed-form; the helpers here summarize concrete
// vector populations (test sets, probe batches, verification samples).
// Counting goes through the packed-word popcount (bitvec.PackWords +
// math/bits.OnesCount64, 64 elements per instruction) rather than summing
// vector elements one bit at a time.

import (
	"absort/internal/bitvec"
)

// OnesProfile summarizes the ones-counts of a vector population.
type OnesProfile struct {
	// Vectors is the population size; Width the vector length.
	Vectors, Width int
	// Min, Max bound the per-vector ones-counts; Total sums them.
	Min, Max, Total int
}

// Mean returns the average ones-count per vector.
func (p OnesProfile) Mean() float64 {
	if p.Vectors == 0 {
		return 0
	}
	return float64(p.Total) / float64(p.Vectors)
}

// Balance returns the mean ones fraction (0.5 = perfectly balanced), the
// quantity stuck-at coverage of data paths is most sensitive to: an
// all-zeros test can never excite a stuck-at-0 fault.
func (p OnesProfile) Balance() float64 {
	if p.Width == 0 {
		return 0
	}
	return p.Mean() / float64(p.Width)
}

// ProfileOnes computes the ones-count profile of equal-length vectors via
// the packed-word popcount.
func ProfileOnes(vs []bitvec.Vector) OnesProfile {
	if len(vs) == 0 {
		return OnesProfile{}
	}
	n := len(vs[0])
	stride := bitvec.WordsPer(n)
	words := bitvec.PackWords(vs)
	p := OnesProfile{Vectors: len(vs), Width: n, Min: n + 1}
	for j := 0; j < len(vs); j++ {
		ones := bitvec.PopCountWords(words[j*stride : (j+1)*stride])
		p.Total += ones
		if ones < p.Min {
			p.Min = ones
		}
		if ones > p.Max {
			p.Max = ones
		}
	}
	return p
}
