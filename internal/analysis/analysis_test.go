package analysis

import (
	"math"
	"testing"

	"absort/internal/core"
	"absort/internal/prefixadd"
)

// TestFormulasBoundMeasuredNetworks is the central calibration test: the
// paper's closed-form expressions must upper-bound (within slack for
// lower-order terms) the measured costs and depths of the networks we
// actually build.
func TestFormulasBoundMeasuredNetworks(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		mm := core.NewMuxMergerSorter(n).Circuit().Stats()
		if f := MuxMergerCostFormula(n); float64(mm.UnitCost) > f {
			t.Errorf("n=%d: mux-merger measured cost %d > formula %.0f", n, mm.UnitCost, f)
		}
		if f := MuxMergerDepthFormula(n) + Lg(n); float64(mm.UnitDepth) > f {
			t.Errorf("n=%d: mux-merger measured depth %d > formula %.0f", n, mm.UnitDepth, f)
		}
		pf := core.NewPrefixSorter(n, prefixadd.Prefix).Circuit().Stats()
		if f := PrefixSorterCostFormula(n) + 10*float64(n); float64(pf.UnitCost) > f {
			t.Errorf("n=%d: prefix measured cost %d > formula+10n %.0f", n, pf.UnitCost, f)
		}
		if f := PrefixSorterDepthFormula(n) + 6*Lg(n); float64(pf.UnitDepth) > f {
			t.Errorf("n=%d: prefix measured depth %d > formula %.0f", n, pf.UnitDepth, f)
		}
	}
}

// TestFishFormulasBoundMeasured checks equations (19)–(26) against the
// fish cost/timing model.
func TestFishFormulasBoundMeasured(t *testing.T) {
	for _, n := range []int{16, 256, 65536} {
		k := core.Lg(n)
		f := core.NewFishSorter(n, k)
		if got, bound := float64(f.Cost().Total()), FishCostFormula(n)+64; got > bound {
			t.Errorf("n=%d: fish cost %.0f > formula %.0f", n, got, bound)
		}
		if got, bound := float64(f.Depth()), FishDepthFormula(n)+4*Lg(n); got > bound {
			t.Errorf("n=%d: fish depth %.0f > formula %.0f", n, got, bound)
		}
		if got, bound := float64(f.SortingTime(false).Total()), 4*FishTimeUnpipelinedFormula(n); got > bound {
			t.Errorf("n=%d: fish time %.0f > 4·lg³n %.0f", n, got, bound)
		}
		if got, bound := float64(f.SortingTime(true).Total()), 3*FishTimePipelinedFormula(n); got > bound {
			t.Errorf("n=%d: fish pipelined time %.0f > 6lg²n %.0f", n, got, bound)
		}
	}
}

// TestRadixPermuterCostShape checks Table II's headline: the fish-based
// permuter is O(n lg n) while the mux-merger-based one is O(n lg² n) —
// i.e. their ratio grows like lg n.
func TestRadixPermuterCostShape(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		fish := RadixPermuterCost(n, RadixFish)
		mm := RadixPermuterCost(n, RadixMuxMerger)
		lg := Lg(n)
		if float64(fish) > 30*float64(n)*lg {
			t.Errorf("n=%d: fish permuter cost %d not O(n lg n)", n, fish)
		}
		if float64(mm) > 5*float64(n)*lg*lg {
			t.Errorf("n=%d: mux-merger permuter cost %d not O(n lg² n)", n, mm)
		}
		if mm <= fish && n >= 256 {
			t.Errorf("n=%d: mux-merger permuter (%d) should cost more than fish (%d)",
				n, mm, fish)
		}
	}
	// Ratio grows: (cost_mm/cost_fish) at 4096 > at 64.
	r1 := float64(RadixPermuterCost(64, RadixMuxMerger)) / float64(RadixPermuterCost(64, RadixFish))
	r2 := float64(RadixPermuterCost(4096, RadixMuxMerger)) / float64(RadixPermuterCost(4096, RadixFish))
	if r2 <= r1 {
		t.Errorf("cost ratio did not grow with n: %.2f -> %.2f", r1, r2)
	}
}

// TestRadixPermuterTimeShape: permutation time is O(lg³ n) for both.
func TestRadixPermuterTimeShape(t *testing.T) {
	for _, n := range []int{64, 1024} {
		lg := Lg(n)
		for _, kind := range []RadixPermuterKind{RadixFish, RadixMuxMerger} {
			tt := RadixPermuterTime(n, kind)
			if float64(tt) > 5*lg*lg*lg {
				t.Errorf("n=%d kind=%d: permutation time %d > 5 lg³n", n, kind, tt)
			}
			if tt <= int(lg) {
				t.Errorf("n=%d kind=%d: time %d implausibly small", n, kind, tt)
			}
		}
	}
}

// TestTable2Shape checks the growth-rate claims of Table II. Our rows are
// measured with their true constants (≈17–22 on the n lg n term for the
// fish permuter) while the cited rows carry unit constants, so a pointwise
// comparison at small n is meaningless; what the table asserts is order of
// growth. We therefore check: (a) the fish permuter's normalized cost
// cost/(n lg n) is flat in n, (b) every other row's cost normalized the
// same way grows, and (c) the fish row undercuts each O(n lg² n)-or-worse
// row once lg n exceeds our constant (evaluated at n = 2^26).
func TestTable2Shape(t *testing.T) {
	norm := func(cost float64, n int) float64 { return cost / (float64(n) * Lg(n)) }
	var prevFish float64
	for _, n := range []int{256, 1024, 4096} {
		rows := Table2(n)
		if len(rows) != 6 {
			t.Fatalf("Table2 has %d rows", len(rows))
		}
		fish := norm(rows[5].Cost, n)
		if prevFish != 0 && fish > prevFish*1.15 {
			t.Errorf("n=%d: fish permuter normalized cost grew %.2f -> %.2f",
				n, prevFish, fish)
		}
		prevFish = fish
		for _, r := range rows[:5] {
			if g := norm(r.Cost, n) / norm(Table2(n / 4)[0].Cost, n/4); r.Construction == rows[0].Construction && g <= 1 {
				t.Errorf("n=%d: %q normalized cost did not grow", n, r.Construction)
			}
		}
		if !rows[4].Measured || !rows[5].Measured {
			t.Error("our rows should be marked measured")
		}
	}
	// (c) asymptotic win: at n = 2^26 the measured-constant fish cost model
	// 22·n·lg n undercuts the unit-constant n·lg² n rows.
	n := 1 << 26
	if 22*float64(n)*Lg(n) >= float64(n)*Lg(n)*Lg(n) {
		t.Error("fish permuter does not undercut n lg² n rows at n = 2^26")
	}
}

// TestAKSCrossover reproduces the abstract's argument: our depth beats
// AKS until lg n exceeds the AKS depth constant (n ≈ 2^6100), and AKS
// never wins on cost against the fish sorter in any feasible regime.
func TestAKSCrossover(t *testing.T) {
	m := DefaultAKS()
	if m.CrossoverDepthLg() < 1000 {
		t.Errorf("crossover lg n = %.0f implausibly small", m.CrossoverDepthLg())
	}
	// At n = 2^20, AKS costs thousands of times more than the fish sorter.
	if f := m.CostFactorAt(1 << 20); f < 100 {
		t.Errorf("AKS cost factor at 2^20 = %.0f, expected ≫ 100", f)
	}
	// Mux-merger depth lg²n beats AKS c·lg n whenever lg n < c.
	for _, lg := range []float64{4, 10, 20, 100, 1000} {
		ours := lg * lg
		aks := m.DepthConstant * lg
		if lg < m.DepthConstant && ours >= aks {
			t.Errorf("lg n=%.0f: our depth %.0f not below AKS %.0f", lg, ours, aks)
		}
	}
}

func TestKForSize(t *testing.T) {
	for _, tc := range []struct{ s, want int }{
		{2, 2}, {4, 2}, {16, 4}, {256, 8}, {65536, 16},
	} {
		if got := KForSize(tc.s); got != tc.want {
			t.Errorf("KForSize(%d) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestLgHelpers(t *testing.T) {
	if math.Abs(Lg(1024)-10) > 1e-9 {
		t.Error("Lg(1024) != 10")
	}
	if LgInt(64) != 6 {
		t.Error("LgInt(64) != 6")
	}
}
