// Package analysis collects the paper's closed-form complexity expressions
// (equations (1)–(27)), evaluates the comparison rows of Table II, and
// models the AKS crossover argument from the abstract. Measured values for
// the constructions built in this module come from the actual netlists;
// rows for networks the paper cites but does not construct (Beneš routing
// processors, the Jan–Oruç radix permuter, AKS) are evaluated analytically
// with the constants the respective papers report.
package analysis

import (
	"math"

	"absort/internal/core"
)

// Lg returns lg n as a float for arbitrary positive n.
func Lg(n int) float64 { return math.Log2(float64(n)) }

// LgInt returns ceil-free lg n for powers of two.
func LgInt(n int) int { return core.Lg(n) }

// PrefixSorterCostFormula returns the paper's Network 1 cost expression,
// 3n lg n + O(lg² n) — the leading term only.
func PrefixSorterCostFormula(n int) float64 {
	return 3 * float64(n) * Lg(n)
}

// PrefixSorterDepthFormula returns 3 lg² n + 2 lg n lg lg n, Network 1's
// stated depth.
func PrefixSorterDepthFormula(n int) float64 {
	lg := Lg(n)
	return 3*lg*lg + 2*lg*math.Log2(lg)
}

// MuxMergerCostFormula returns 4n lg n, Network 2's stated cost.
func MuxMergerCostFormula(n int) float64 { return 4 * float64(n) * Lg(n) }

// MuxMergerDepthFormula returns lg² n, the solution of the Section III-B
// depth recurrence D(n) = D(n/2) + 2 lg n − 1 with D(2) = 1 (the text's
// "2 lg n" line is a typo; the abstract says O(lg² n)).
func MuxMergerDepthFormula(n int) float64 {
	lg := Lg(n)
	return lg * lg
}

// FishCostFormula returns equation (19): C(n, lg n) ≤ 17n +
// 5 lg² n lg lg n + 4 lg n lg lg n.
func FishCostFormula(n int) float64 {
	lg := Lg(n)
	lglg := math.Log2(lg)
	return 17*float64(n) + 5*lg*lg*lglg + 4*lg*lglg
}

// FishDepthFormula returns equation (20)/(21): D(n, lg n) ≤ 2 lg n +
// 2 lg²(n/lg n) + lg n + 2 lg² lg n = O(lg² n); we return the simplified
// dominant form 2 lg² n + 3 lg n.
func FishDepthFormula(n int) float64 {
	lg := Lg(n)
	return 2*lg*lg + 3*lg
}

// FishTimeUnpipelinedFormula returns equation (24): T(n, lg n) = O(lg³ n);
// dominant form lg³ n.
func FishTimeUnpipelinedFormula(n int) float64 {
	lg := Lg(n)
	return lg * lg * lg
}

// FishTimePipelinedFormula returns equation (26): T_pip(n, lg n) =
// O(lg² n); dominant form 2 lg² n.
func FishTimePipelinedFormula(n int) float64 {
	lg := Lg(n)
	return 2 * lg * lg
}

// RadixPermuterKind selects the distribution sorter for the Fig. 10 cost
// model.
type RadixPermuterKind int

// Radix permuter variants the paper derives in Section IV.
const (
	// RadixFish: fish binary sorters — O(n lg n) cost, packet-switched.
	RadixFish RadixPermuterKind = iota
	// RadixMuxMerger: mux-merger sorters — O(n lg² n) cost,
	// circuit-switched, "much simpler design".
	RadixMuxMerger
)

// KForSize returns the fish group count used at a distribution level of
// size s: the largest power of two ≤ max(2, lg s), capped at s.
func KForSize(s int) int {
	lg := core.Lg(s)
	k := 2
	for k*2 <= lg {
		k *= 2
	}
	if k > s {
		k = s
	}
	return k
}

// fishSorterCost returns the exact fish-sorter switching cost at size s
// with the KForSize group count (s ≥ 4); for s = 2 a single comparator.
func fishSorterCost(s int) int {
	if s <= 2 {
		return 1
	}
	f := core.NewFishSorter(s, KForSize(s))
	return f.Cost().Total()
}

// fishSorterTime returns the pipelined fish sorting time at size s: the
// radix permuter built on fish sorters is packet-switched (Section IV), so
// each distribution stage runs with its groups pipelined — O(lg² s) per
// level, giving the O(lg³ n) total of equation (27).
func fishSorterTime(s int) int {
	if s <= 2 {
		return 1
	}
	f := core.NewFishSorter(s, KForSize(s))
	return f.SortingTime(true).Total()
}

// RadixPermuterCost returns the exact unit cost of the Fig. 10 permuter at
// width n: equation (26)'s recurrence Crp(n) = Csorter(n) + 2 Crp(n/2)
// summed explicitly over levels.
func RadixPermuterCost(n int, kind RadixPermuterKind) int {
	total := 0
	for s, mult := n, 1; s >= 2; s, mult = s/2, mult*2 {
		var c int
		switch kind {
		case RadixFish:
			c = fishSorterCost(s)
		case RadixMuxMerger:
			c = core.MuxMergerSortCost(s)
		}
		total += mult * c
	}
	return total
}

// RadixPermuterTime returns the permutation time of the Fig. 10 permuter:
// the levels run sequentially, so it is the sum of per-level sorter times
// (equation (27): O(lg² n) per level × lg n levels = O(lg³ n)).
func RadixPermuterTime(n int, kind RadixPermuterKind) int {
	total := 0
	for s := n; s >= 2; s /= 2 {
		switch kind {
		case RadixFish:
			total += fishSorterTime(s)
		case RadixMuxMerger:
			total += core.MuxMergerSortDepth(s)
		}
	}
	return total
}

// Table2Row is one comparison row of Table II, evaluated at a width n.
type Table2Row struct {
	Construction string
	// CostExpr, DepthExpr, TimeExpr are the asymptotic expressions as the
	// table prints them.
	CostExpr, DepthExpr, TimeExpr string
	// Cost, Depth, Time are representative numeric evaluations at n
	// (measured for the constructions we build, analytic otherwise).
	Cost, Depth, Time float64
	// Measured marks rows whose numbers come from constructed networks.
	Measured bool
}

// Table2 evaluates all rows of Table II at width n (a power of two).
func Table2(n int) []Table2Row {
	lg := Lg(n)
	lglg := math.Log2(lg)
	rows := []Table2Row{
		{
			Construction: "Beneš network [4] + parallel looping [18]",
			CostExpr:     "O(n lg² n)", DepthExpr: "O(lg n)", TimeExpr: "O(lg⁴ n / lg lg n)",
			Cost:  float64(n) * lg * lg,
			Depth: 2*lg - 1,
			Time:  lg * lg * lg * lg / lglg,
		},
		{
			Construction: "Batcher sorting network [3]",
			CostExpr:     "O(n lg³ n)", DepthExpr: "O(lg³ n)", TimeExpr: "O(lg³ n)",
			Cost:  float64(n) / 4 * lg * (lg + 1) * lg, // word comparators × lg n bit cost
			Depth: lg * (lg + 1) / 2 * lg,
			Time:  lg * (lg + 1) / 2 * lg,
		},
		{
			Construction: "Self-routing permuter (Koppelman–Oruç [13])",
			CostExpr:     "O(n lg³ n)", DepthExpr: "O(lg³ n)", TimeExpr: "O(lg³ n)",
			Cost:  float64(n) * lg * lg * lg,
			Depth: lg * lg * lg,
			Time:  lg * lg * lg,
		},
		{
			Construction: "Radix permuter (Jan–Oruç [11])",
			CostExpr:     "O(n lg² n)", DepthExpr: "O(lg² n)", TimeExpr: "O(lg² n lg lg n)",
			Cost:  float64(n) * lg * lg,
			Depth: lg * lg,
			Time:  lg * lg * lglg,
		},
		{
			Construction: "This paper: radix permuter + mux-merger sorters",
			CostExpr:     "O(n lg² n)", DepthExpr: "O(lg³ n)", TimeExpr: "O(lg³ n)",
			Cost:     float64(RadixPermuterCost(n, RadixMuxMerger)),
			Depth:    float64(RadixPermuterTime(n, RadixMuxMerger)),
			Time:     float64(RadixPermuterTime(n, RadixMuxMerger)),
			Measured: true,
		},
		{
			Construction: "This paper: radix permuter + fish sorters",
			CostExpr:     "O(n lg n)", DepthExpr: "O(lg³ n)", TimeExpr: "O(lg³ n)",
			Cost:     float64(RadixPermuterCost(n, RadixFish)),
			Depth:    float64(RadixPermuterTime(n, RadixFish)),
			Time:     float64(RadixPermuterTime(n, RadixFish)),
			Measured: true,
		},
	}
	return rows
}

// AKSModel captures the crossover comparison from the abstract: the AKS
// network's complexities hide constants so large that the paper's networks
// win until n is extreme. Paterson's simplified AKS variant [20] has depth
// about c·lg n with c ≈ 6100; earlier published constants are far larger.
type AKSModel struct {
	// DepthConstant is the per-lg-n depth factor (Paterson's ≈ 6100).
	DepthConstant float64
	// CostConstant multiplies n lg n (comparators ≈ DepthConstant·n/2
	// per level aggregated: ~3050 n lg n).
	CostConstant float64
}

// DefaultAKS returns the Paterson-constant model.
func DefaultAKS() AKSModel { return AKSModel{DepthConstant: 6100, CostConstant: 3050} }

// CrossoverDepthLg returns the lg n beyond which AKS depth (c·lg n) beats
// the mux-merger sorter's lg² n: lg n > c.
func (m AKSModel) CrossoverDepthLg() float64 { return m.DepthConstant }

// CrossoverCostLgFish returns the lg n beyond which AKS cost (c·n lg n)
// beats the fish sorter's ≈17n: never for cost (17n < c·n lg n for all
// n ≥ 2 when c ≥ 9), so this reports the factor by which AKS is more
// expensive at width n.
func (m AKSModel) CostFactorAt(n int) float64 {
	return m.CostConstant * float64(n) * Lg(n) / FishCostFormula(n)
}
