package muxnet

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

func TestSelectBits(t *testing.T) {
	got := SelectBits(6, 16)
	want := bitvec.MustFromString("0110")
	if !bitvec.Vector(got).Equal(want) {
		t.Errorf("SelectBits(6,16) = %v, want %v", got, want)
	}
	if len(SelectBits(0, 1)) != 0 {
		t.Error("SelectBits(0,1) should be empty")
	}
}

func TestMuxGroupsBehavioral(t *testing.T) {
	v := bitvec.MustFromString("0001101100101110")
	if got := MuxGroups(v, 4, 2).String(); got != "0010" {
		t.Errorf("MuxGroups group 2 = %s", got)
	}
	if got := MuxGroups(v, 16, 0); !got.Equal(v) {
		t.Errorf("MuxGroups full = %s", got)
	}
}

func TestDemuxGroupsBehavioral(t *testing.T) {
	blk := bitvec.MustFromString("1011")
	got := DemuxGroups(blk, 16, 1)
	if got.String() != "0000101100000000" {
		t.Errorf("DemuxGroups = %s", got)
	}
}

// TestFig3Mux builds the paper's (16,4)-multiplexer of Fig. 3(a) and checks
// that the two MSB select bits choose the group, on all groups and many
// random data vectors.
func TestFig3Mux(t *testing.T) {
	c := MuxNKCircuit(16, 4)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		v := bitvec.Random(rng, 16)
		for g := 0; g < 4; g++ {
			in := bitvec.Concat(SelectBits(g, 4), v)
			got := c.Eval(in)
			if want := MuxGroups(v, 4, g); !got.Equal(want) {
				t.Fatalf("group %d of %s: got %s want %s", g, v, got, want)
			}
		}
	}
}

// TestFig3Demux builds the paper's (4,16)-demultiplexer of Fig. 3(b).
func TestFig3Demux(t *testing.T) {
	c := DemuxKNCircuit(4, 16)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		blk := bitvec.Random(rng, 4)
		for g := 0; g < 4; g++ {
			in := bitvec.Concat(SelectBits(g, 4), blk)
			got := c.Eval(in)
			if want := DemuxGroups(blk, 16, g); !got.Equal(want) {
				t.Fatalf("group %d of %s: got %s want %s", g, blk, got, want)
			}
		}
	}
}

// TestMuxCostDepth checks the Section II accounting: an (n,k)-multiplexer
// exacts ≤ n cost (exactly k(n/k − 1)) and lg(n/k) depth; same for the
// (k,n)-demultiplexer.
func TestMuxCostDepth(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{16, 4}, {16, 1}, {64, 8}, {256, 16}, {32, 32}} {
		s := MuxNKCircuit(tc.n, tc.k).Stats()
		wantCost := tc.k * (tc.n/tc.k - 1)
		wantDepth := 0
		for 1<<uint(wantDepth) < tc.n/tc.k {
			wantDepth++
		}
		if s.UnitCost != wantCost {
			t.Errorf("(%d,%d)-mux cost %d, want %d", tc.n, tc.k, s.UnitCost, wantCost)
		}
		if s.UnitCost > tc.n {
			t.Errorf("(%d,%d)-mux cost %d exceeds n", tc.n, tc.k, s.UnitCost)
		}
		if s.UnitDepth != wantDepth {
			t.Errorf("(%d,%d)-mux depth %d, want %d", tc.n, tc.k, s.UnitDepth, wantDepth)
		}
		sd := DemuxKNCircuit(tc.k, tc.n).Stats()
		if sd.UnitCost != wantCost {
			t.Errorf("(%d,%d)-demux cost %d, want %d", tc.k, tc.n, sd.UnitCost, wantCost)
		}
		if sd.UnitDepth != wantDepth {
			t.Errorf("(%d,%d)-demux depth %d, want %d", tc.k, tc.n, sd.UnitDepth, wantDepth)
		}
	}
}

// TestMuxDemuxRoundTrip routes a block through a mux and back through a
// demux; composing them must reproduce the block in its group slot.
func TestMuxDemuxRoundTrip(t *testing.T) {
	n, k := 32, 8
	rng := rand.New(rand.NewSource(29))
	mux := MuxNKCircuit(n, k)
	demux := DemuxKNCircuit(k, n)
	for i := 0; i < 50; i++ {
		v := bitvec.Random(rng, n)
		for g := 0; g < n/k; g++ {
			sel := SelectBits(g, n/k)
			blk := mux.Eval(bitvec.Concat(sel, v))
			back := demux.Eval(bitvec.Concat(sel, blk))
			want := DemuxGroups(v[g*k:(g+1)*k], n, g)
			if !back.Equal(want) {
				t.Fatalf("round trip g=%d: %s, want %s", g, back, want)
			}
		}
	}
}

// TestDemuxZeroesOthers verifies all non-selected outputs are 0, which the
// fish sorter's OR-combining of demux outputs depends on.
func TestDemuxZeroesOthers(t *testing.T) {
	c := DemuxKNCircuit(2, 8)
	out := c.Eval(bitvec.MustFromString("10" + "11"))
	if out.String() != "00001100" {
		t.Errorf("demux(sel=10, 11) = %s", out)
	}
}

func TestExhaustiveSmallMux(t *testing.T) {
	// (8,2)-mux exhaustively over all data and selects.
	c := MuxNKCircuit(8, 2)
	bitvec.All(8, func(v bitvec.Vector) bool {
		for g := 0; g < 4; g++ {
			got := c.Eval(bitvec.Concat(SelectBits(g, 4), v))
			if want := MuxGroups(v, 2, g); !got.Equal(want) {
				t.Errorf("mux(%s, g=%d) = %s, want %s", v, g, got, want)
				return false
			}
		}
		return true
	})
}

func TestBuildMux1Degenerate(t *testing.T) {
	b := netlist.NewBuilder("m1")
	in := b.Inputs(1)
	out := BuildMux1(b, nil, in)
	b.SetOutputs([]netlist.Wire{out})
	c := b.MustBuild()
	if got := c.Eval(bitvec.MustFromString("1")); got.String() != "1" {
		t.Errorf("(1,1)-mux = %s", got)
	}
	if c.Stats().UnitCost != 0 {
		t.Error("(1,1)-mux should be free")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("lg2 non-pow2", func() { MuxNKCircuit(12, 4) })
	mustPanic("MuxGroups k", func() { MuxGroups(bitvec.New(8), 3, 0) })
	mustPanic("MuxGroups group", func() { MuxGroups(bitvec.New(8), 2, 4) })
	mustPanic("DemuxGroups", func() { DemuxGroups(bitvec.New(3), 8, 0) })
	mustPanic("DemuxGroups group", func() { DemuxGroups(bitvec.New(2), 8, 9) })
	mustPanic("BuildMux1 arity", func() {
		b := netlist.NewBuilder("x")
		BuildMux1(b, b.Inputs(1), b.Inputs(8))
	})
	mustPanic("BuildMuxNK", func() {
		b := netlist.NewBuilder("x")
		BuildMuxNK(b, b.Inputs(1), b.Inputs(8), 3)
	})
	mustPanic("BuildDemuxKN", func() {
		b := netlist.NewBuilder("x")
		BuildDemuxKN(b, b.Inputs(1), b.Inputs(3), 8)
	})
}
