// Package muxnet implements the multiplexer and demultiplexer blocks of
// Section II of the paper (Fig. 3): (m,1)- and (n,k)-multiplexers realized
// as balanced binary trees of (2,1)-multiplexers, and (1,m)- and
// (k,n)-demultiplexers realized as balanced binary trees of
// (1,2)-demultiplexers.
//
// Select inputs are most-significant-bit first, matching the paper's group
// identifiers ("the leftmost two bits of the binary codes assigned to the
// inputs" select the group in Fig. 3(a)).
package muxnet

import (
	"fmt"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

// lg2 returns lg m for exact powers of two and panics otherwise.
func lg2(m int) int {
	l := 0
	for 1<<uint(l) < m {
		l++
	}
	if 1<<uint(l) != m {
		panic(fmt.Sprintf("muxnet: %d is not a power of two", m))
	}
	return l
}

// SelectBits returns the lg(m)-bit MSB-first encoding of group.
func SelectBits(group, m int) []bitvec.Bit {
	w := lg2(m)
	sel := make([]bitvec.Bit, w)
	for i := 0; i < w; i++ {
		sel[i] = bitvec.Bit((group >> uint(w-1-i)) & 1)
	}
	return sel
}

// MuxGroups behaviorally applies an (n,k)-multiplexer: it selects group
// number `group` (0-based) of k consecutive elements out of v's n/k groups.
func MuxGroups(v bitvec.Vector, k, group int) bitvec.Vector {
	n := len(v)
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("muxnet: MuxGroups(%d, k=%d)", n, k))
	}
	g := n / k
	if group < 0 || group >= g {
		panic(fmt.Sprintf("muxnet: group %d of %d", group, g))
	}
	return v[group*k : (group+1)*k].Clone()
}

// DemuxGroups behaviorally applies a (k,n)-demultiplexer: the k-element
// block appears as group number `group` of the n outputs; all other outputs
// are 0.
func DemuxGroups(block bitvec.Vector, n, group int) bitvec.Vector {
	k := len(block)
	if k == 0 || n%k != 0 {
		panic(fmt.Sprintf("muxnet: DemuxGroups(k=%d, n=%d)", k, n))
	}
	if group < 0 || group >= n/k {
		panic(fmt.Sprintf("muxnet: group %d of %d", group, n/k))
	}
	out := bitvec.New(n)
	copy(out[group*k:], block)
	return out
}

// BuildMux1 appends an (m,1)-multiplexer to b as a balanced binary tree of
// lg m levels of (2,1)-multiplexers. sel is MSB-first and must have
// exactly lg m bits. Cost m-1 units, depth lg m.
func BuildMux1(b *netlist.Builder, sel []netlist.Wire, in []netlist.Wire) netlist.Wire {
	m := len(in)
	if w := lg2(m); w != len(sel) {
		panic(fmt.Sprintf("muxnet: BuildMux1 with %d inputs and %d select bits", m, len(sel)))
	}
	if m == 1 {
		return in[0]
	}
	lo := BuildMux1(b, sel[1:], in[:m/2])
	hi := BuildMux1(b, sel[1:], in[m/2:])
	return b.Mux(sel[0], lo, hi)
}

// BuildMuxNK appends an (n,k)-multiplexer to b, formed by coupling k
// (n/k,1)-multiplexers as in the paper. Output j of the k outputs is the
// j-th element of the selected group. Cost k(n/k − 1) ≤ n units, depth
// lg(n/k).
func BuildMuxNK(b *netlist.Builder, sel []netlist.Wire, in []netlist.Wire, k int) []netlist.Wire {
	n := len(in)
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("muxnet: BuildMuxNK(n=%d, k=%d)", n, k))
	}
	g := n / k
	out := make([]netlist.Wire, k)
	lane := make([]netlist.Wire, g)
	for j := 0; j < k; j++ {
		for i := 0; i < g; i++ {
			lane[i] = in[i*k+j]
		}
		out[j] = BuildMux1(b, sel, lane)
	}
	return out
}

// BuildDemux1 appends a (1,m)-demultiplexer to b as a balanced binary tree
// of lg m levels of (1,2)-demultiplexers. The input appears on output
// `sel`; every other output is 0. Cost m-1 units, depth lg m.
func BuildDemux1(b *netlist.Builder, sel []netlist.Wire, in netlist.Wire) []netlist.Wire {
	m := 1 << uint(len(sel))
	if m == 1 {
		return []netlist.Wire{in}
	}
	lo, hi := b.Demux(sel[0], in)
	outLo := BuildDemux1(b, sel[1:], lo)
	outHi := BuildDemux1(b, sel[1:], hi)
	return append(outLo, outHi...)
}

// BuildDemuxKN appends a (k,n)-demultiplexer to b, formed by coupling k
// (1,n/k)-demultiplexers. The k inputs appear as group `sel` of the n
// outputs. Cost k(n/k − 1) ≤ n units, depth lg(n/k).
func BuildDemuxKN(b *netlist.Builder, sel []netlist.Wire, in []netlist.Wire, n int) []netlist.Wire {
	k := len(in)
	if k == 0 || n%k != 0 {
		panic(fmt.Sprintf("muxnet: BuildDemuxKN(k=%d, n=%d)", k, n))
	}
	g := n / k
	out := make([]netlist.Wire, n)
	for j := 0; j < k; j++ {
		lanes := BuildDemux1(b, sel, in[j])
		for i := 0; i < g; i++ {
			out[i*k+j] = lanes[i]
		}
	}
	return out
}

// MuxNKCircuit builds a standalone (n,k)-multiplexer circuit. Inputs:
// lg(n/k) select bits (MSB first) followed by the n data bits.
func MuxNKCircuit(n, k int) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("mux-%d-%d", n, k))
	sel := b.Inputs(lg2(n / k))
	in := b.Inputs(n)
	b.SetOutputs(BuildMuxNK(b, sel, in, k))
	return b.MustBuild()
}

// DemuxKNCircuit builds a standalone (k,n)-demultiplexer circuit. Inputs:
// lg(n/k) select bits (MSB first) followed by the k data bits.
func DemuxKNCircuit(k, n int) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("demux-%d-%d", k, n))
	sel := b.Inputs(lg2(n / k))
	in := b.Inputs(k)
	b.SetOutputs(BuildDemuxKN(b, sel, in, n))
	return b.MustBuild()
}
