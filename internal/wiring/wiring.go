// Package wiring provides the fixed interconnection patterns (shuffles and
// their inverses) used between switching stages in the paper's networks:
// the two-way shuffle of Fig. 2(a), the four-way shuffle of Fig. 2(b), and
// general k-way shuffles.
//
// A wiring pattern is represented as a permutation p of {0,...,n-1} in
// "receives-from" form: output j is connected to input p[j]. Apply and
// ApplyWires route values through a pattern in this convention.
package wiring

import "fmt"

// Perm is a wiring permutation in receives-from form: output j carries
// input Perm[j].
type Perm []int

// Identity returns the identity wiring on n lines.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a permutation of {0,...,len(p)-1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, x := range p {
		if x < 0 || x >= len(p) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// Inverse returns the inverse wiring: if p routes input i to output j,
// the inverse routes input j to output i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for j, i := range p {
		q[i] = j
	}
	return q
}

// Compose returns the wiring equivalent to applying p first, then q:
// out[j] = in[p[q[j]]], i.e. (q∘p)[j] = p[q[j]] in receives-from form.
func Compose(p, q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("wiring: Compose of lengths %d and %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for j := range r {
		r[j] = p[q[j]]
	}
	return r
}

// KWayShuffle returns the k-way shuffle on n lines: the n inputs are viewed
// as k contiguous blocks of n/k, and output positions j*k+r receive input
// r*(n/k)+j — i.e. the blocks are interleaved. KWayShuffle(n, 2) is the
// perfect (two-way) shuffle.
func KWayShuffle(n, k int) Perm {
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("wiring: KWayShuffle(%d, %d)", n, k))
	}
	m := n / k
	p := make(Perm, n)
	for j := 0; j < m; j++ {
		for r := 0; r < k; r++ {
			p[j*k+r] = r*m + j
		}
	}
	return p
}

// PerfectShuffle returns the two-way shuffle connection of Fig. 2(a).
func PerfectShuffle(n int) Perm { return KWayShuffle(n, 2) }

// Unshuffle returns the reversed two-way shuffle connection.
func Unshuffle(n int) Perm { return PerfectShuffle(n).Inverse() }

// FourWayShuffle returns the four-way shuffle connection of Fig. 2(b).
func FourWayShuffle(n int) Perm { return KWayShuffle(n, 4) }

// Apply routes a value slice through the wiring: out[j] = in[p[j]].
// The element type is generic so the same patterns route bits, wires,
// packets, and integers.
func Apply[T any](p Perm, in []T) []T {
	if len(in) != len(p) {
		panic(fmt.Sprintf("wiring: Apply perm of len %d to slice of len %d",
			len(p), len(in)))
	}
	out := make([]T, len(in))
	for j, i := range p {
		out[j] = in[i]
	}
	return out
}

// BlockPerm lifts a permutation of k blocks to a wiring on n lines:
// output block j (of size n/k) receives input block bp[j] intact.
func BlockPerm(n int, bp []int) Perm {
	k := len(bp)
	if k == 0 || n%k != 0 {
		panic(fmt.Sprintf("wiring: BlockPerm(%d) with %d blocks", n, k))
	}
	m := n / k
	p := make(Perm, n)
	for j, i := range bp {
		for t := 0; t < m; t++ {
			p[j*m+t] = i*m + t
		}
	}
	return p
}

// Reverse returns the order-reversing wiring on n lines.
func Reverse(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}
