package wiring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"absort/internal/bitvec"
)

func TestIdentity(t *testing.T) {
	p := Identity(8)
	if !p.Valid() {
		t.Fatal("identity not valid")
	}
	in := []int{5, 6, 7, 8, 9, 10, 11, 12}
	out := Apply(p, in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("identity moved element %d", i)
		}
	}
}

func TestPerfectShuffleMatchesBitvec(t *testing.T) {
	// bitvec.Vector.Shuffle is the reference semantic.
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 64; n *= 2 {
		v := bitvec.Random(rng, n)
		got := Apply(PerfectShuffle(n), []bitvec.Bit(v))
		want := v.Shuffle()
		if !bitvec.Vector(got).Equal(want) {
			t.Fatalf("n=%d: wiring shuffle %v != bitvec shuffle %v", n, got, want)
		}
	}
}

func TestUnshuffleInverse(t *testing.T) {
	for n := 2; n <= 64; n *= 2 {
		s := PerfectShuffle(n)
		u := Unshuffle(n)
		if c := Compose(s, u); !isIdentity(c) {
			t.Fatalf("n=%d: shuffle∘unshuffle != id: %v", n, c)
		}
		if c := Compose(u, s); !isIdentity(c) {
			t.Fatalf("n=%d: unshuffle∘shuffle != id: %v", n, c)
		}
	}
}

func isIdentity(p Perm) bool {
	for i, x := range p {
		if x != i {
			return false
		}
	}
	return true
}

func TestKWayShuffle(t *testing.T) {
	// 4-way shuffle of 8 lines: blocks {0,1},{2,3},{4,5},{6,7} interleave to
	// 0,2,4,6,1,3,5,7.
	p := KWayShuffle(8, 4)
	want := Perm{0, 2, 4, 6, 1, 3, 5, 7}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("KWayShuffle(8,4) = %v, want %v", p, want)
		}
	}
	if !p.Valid() {
		t.Fatal("not a permutation")
	}
	// k=n degenerates to identity; k=1 likewise.
	if !isIdentity(KWayShuffle(6, 6)) {
		t.Error("KWayShuffle(n,n) != identity")
	}
	if !isIdentity(KWayShuffle(6, 1)) {
		t.Error("KWayShuffle(n,1) != identity")
	}
}

func TestFourWayShuffleGroups(t *testing.T) {
	// Output quartet j holds inputs (j, j+n/4, j+n/2, j+3n/4): that is what
	// feeds 4×4 switch j in Fig. 2(b).
	n := 16
	p := FourWayShuffle(n)
	for j := 0; j < n/4; j++ {
		for r := 0; r < 4; r++ {
			if p[4*j+r] != r*(n/4)+j {
				t.Fatalf("four-way shuffle line %d = %d", 4*j+r, p[4*j+r])
			}
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		p := randPerm(rng, n)
		q := randPerm(rng, n)
		r := randPerm(rng, n)
		lhs := Compose(Compose(p, q), r)
		rhs := Compose(p, Compose(q, r))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeSemantics(t *testing.T) {
	// Apply(Compose(p,q), v) == Apply(q, Apply(p, v)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		p := randPerm(rng, n)
		q := randPerm(rng, n)
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Int()
		}
		lhs := Apply(Compose(p, q), v)
		rhs := Apply(q, Apply(p, v))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randPerm(rng *rand.Rand, n int) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		p := randPerm(rng, 3+rng.Intn(20))
		if !isIdentity(Compose(p, p.Inverse())) {
			t.Fatalf("p∘p⁻¹ != id for %v", p)
		}
	}
}

func TestBlockPerm(t *testing.T) {
	// Swap halves of 8 lines as 2 blocks.
	p := BlockPerm(8, []int{1, 0})
	v := bitvec.MustFromString("00001111")
	got := Apply(p, []bitvec.Bit(v))
	if bitvec.Vector(got).String() != "11110000" {
		t.Errorf("BlockPerm half swap = %v", got)
	}
	// Rotate quarters.
	p4 := BlockPerm(8, []int{1, 2, 3, 0})
	v2 := bitvec.MustFromString("00011011")
	got2 := Apply(p4, []bitvec.Bit(v2))
	if bitvec.Vector(got2).String() != "01101100" {
		t.Errorf("BlockPerm rotate = %v", bitvec.Vector(got2))
	}
}

func TestReverse(t *testing.T) {
	v := []int{1, 2, 3, 4}
	got := Apply(Reverse(4), v)
	want := []int{4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reverse: %v", got)
		}
	}
}

func TestValid(t *testing.T) {
	if (Perm{0, 0, 1}).Valid() {
		t.Error("duplicate accepted")
	}
	if (Perm{0, 3}).Valid() {
		t.Error("out of range accepted")
	}
	if !(Perm{}).Valid() {
		t.Error("empty perm should be valid")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("KWayShuffle", func() { KWayShuffle(8, 3) })
	mustPanic("Compose", func() { Compose(Identity(3), Identity(4)) })
	mustPanic("Apply", func() { Apply(Identity(3), []int{1, 2}) })
	mustPanic("BlockPerm", func() { BlockPerm(8, []int{0, 1, 2}) })
}
