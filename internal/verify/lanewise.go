// Lanewise runtime response checks: the hot-path counterpart of the
// offline verifiers, cheap enough to run on a sampled fraction of live
// serving responses. Each check is one O(n) pass over a routed result with
// the bookkeeping held in bit-sliced planes — a pooled seen bitmap (one
// bit per network position, the same vertical layout the wide sweep in
// wide.go uses for its plane counters) — so a clean response costs a few
// word operations per element and zero steady-state heap allocations.
//
// The invariants mirror the offline suite: permutation validity plus
// realization (dest[p[j]] == j) for permuters, ones-conservation /
// tag-sortedness (exactly the marked inputs occupy the leading block) for
// concentrators, and nondecreasing keys plus permutation realization for
// word sorts. A stuck-at fault in a routing plan moves whole packet words,
// so its misroutes always surface as one of these violations.
package verify

import (
	"fmt"
	"sync"
)

// LaneChecker verifies routed responses for one network width n. It is
// safe for concurrent use; every check draws its seen planes from an
// internal pool.
type LaneChecker struct {
	n    int
	pool sync.Pool // *laneScratch
}

// laneScratch is the pooled bit-sliced bookkeeping of one check: a seen
// plane with one bit per network position.
type laneScratch struct {
	seen []uint64
}

// NewLaneChecker returns a checker for width-n responses.
func NewLaneChecker(n int) *LaneChecker {
	if n < 1 {
		panic(fmt.Sprintf("verify: NewLaneChecker(%d)", n))
	}
	words := (n + 63) / 64
	c := &LaneChecker{n: n}
	c.pool.New = func() any {
		return &laneScratch{seen: make([]uint64, words)}
	}
	return c
}

// N returns the network width the checker verifies.
func (c *LaneChecker) N() int { return c.n }

// get returns a cleared seen plane from the pool.
func (c *LaneChecker) get() *laneScratch {
	sc := c.pool.Get().(*laneScratch)
	for i := range sc.seen {
		sc.seen[i] = 0
	}
	return sc
}

// mark sets position i's seen bit, reporting whether it was already set
// (a duplicated payload — the routing fabric dropped or cloned a packet).
func (sc *laneScratch) mark(i int) bool {
	w, b := i>>6, uint(i&63)
	dup := sc.seen[w]>>b&1 != 0
	sc.seen[w] |= 1 << b
	return dup
}

// CheckPermute verifies that out is a valid permutation realizing the
// assignment dest (out in receives-from form: output j holds input
// out[j], so realization demands dest[out[j]] == j).
func (c *LaneChecker) CheckPermute(dest, out []int) error {
	if len(dest) != c.n || len(out) != c.n {
		return fmt.Errorf("verify: lanewise: %d destinations / %d outputs for width %d",
			len(dest), len(out), c.n)
	}
	sc := c.get()
	defer c.pool.Put(sc)
	for j, i := range out {
		if i < 0 || i >= c.n {
			return fmt.Errorf("verify: lanewise: output %d holds invalid input %d", j, i)
		}
		if sc.mark(i) {
			return fmt.Errorf("verify: lanewise: input %d delivered more than once (output %d)", i, j)
		}
		if dest[i] != j {
			return fmt.Errorf("verify: lanewise: output %d holds input %d destined for %d", j, i, dest[i])
		}
	}
	return nil
}

// CheckConcentrate verifies ones-conservation for a concentrator response:
// out is a valid permutation and exactly the marked inputs occupy outputs
// 0..count-1 (given validity, the leading-block iff test subsumes the
// count comparison — if count disagrees with the number of marks, some
// position must violate it).
func (c *LaneChecker) CheckConcentrate(marked []bool, out []int, count int) error {
	if len(marked) != c.n || len(out) != c.n {
		return fmt.Errorf("verify: lanewise: %d marks / %d outputs for width %d",
			len(marked), len(out), c.n)
	}
	if count < 0 || count > c.n {
		return fmt.Errorf("verify: lanewise: concentrated count %d for width %d", count, c.n)
	}
	sc := c.get()
	defer c.pool.Put(sc)
	for j, i := range out {
		if i < 0 || i >= c.n {
			return fmt.Errorf("verify: lanewise: output %d holds invalid input %d", j, i)
		}
		if sc.mark(i) {
			return fmt.Errorf("verify: lanewise: input %d delivered more than once (output %d)", i, j)
		}
		if marked[i] != (j < count) {
			if marked[i] {
				return fmt.Errorf("verify: lanewise: marked input %d leaked to output %d (count %d)", i, j, count)
			}
			return fmt.Errorf("verify: lanewise: idle input %d inside leading block at output %d (count %d)", i, j, count)
		}
	}
	return nil
}

// CheckSortWords verifies a word-sort response: sorted is nondecreasing
// and perm is a valid permutation realizing it (sorted[j] == keys[perm[j]]).
func (c *LaneChecker) CheckSortWords(keys, sorted []uint64, perm []int) error {
	if len(keys) != c.n || len(sorted) != c.n || len(perm) != c.n {
		return fmt.Errorf("verify: lanewise: %d keys / %d sorted / %d perm for width %d",
			len(keys), len(sorted), len(perm), c.n)
	}
	sc := c.get()
	defer c.pool.Put(sc)
	for j, i := range perm {
		if i < 0 || i >= c.n {
			return fmt.Errorf("verify: lanewise: output %d holds invalid input %d", j, i)
		}
		if sc.mark(i) {
			return fmt.Errorf("verify: lanewise: input %d delivered more than once (output %d)", i, j)
		}
		if sorted[j] != keys[i] {
			return fmt.Errorf("verify: lanewise: output %d holds %#x, input %d carried %#x", j, sorted[j], i, keys[i])
		}
		if j > 0 && sorted[j-1] > sorted[j] {
			return fmt.Errorf("verify: lanewise: keys out of order at output %d: %#x > %#x", j, sorted[j-1], sorted[j])
		}
	}
	return nil
}
