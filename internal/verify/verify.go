// Package verify is a property-verification toolkit for the networks in
// this module: exhaustive and sampled checkers for the sorting,
// concentration and rearrangeability properties, with goroutine-parallel
// input sweeps and counterexample minimization. It is used by the test
// suites and by cmd/netstat to certify constructed networks.
package verify

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"absort/internal/bitvec"
)

// BitSorter is any n-input binary sorting function.
type BitSorter func(bitvec.Vector) bitvec.Vector

// Result reports the outcome of a verification sweep.
type Result struct {
	// OK is true when no counterexample was found.
	OK bool
	// Checked is the number of inputs evaluated.
	Checked uint64
	// Counterexample is a failing input (minimized when minimization is
	// enabled); nil when OK.
	Counterexample bitvec.Vector
	// Got is the network's (incorrect) output on the counterexample.
	Got bitvec.Vector
}

// Options configure a verification sweep.
type Options struct {
	// Workers is the parallelism degree; any value ≤ 0 means GOMAXPROCS.
	Workers int
	// Minimize shrinks a found counterexample by greedily clearing 1-bits
	// and shortening runs while the failure persists.
	Minimize bool
}

// workers resolves the parallelism degree: ≤ 0 (unset or nonsensical)
// clamps to GOMAXPROCS, mirroring the sample-count clamps of the
// sampled verifiers — a negative configuration never silently weakens
// or deadlocks a sweep.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SortsAllBinary exhaustively checks that sorter sorts every n-bit input,
// sweeping the 2^n inputs across parallel workers. n must be ≤ 30.
func SortsAllBinary(n int, sorter BitSorter, opts Options) Result {
	if n > 30 {
		panic(fmt.Sprintf("verify: SortsAllBinary with n=%d (max 30)", n))
	}
	total := uint64(1) << uint(n)
	w := opts.workers()
	if total < uint64(w) {
		w = int(total)
	}
	var (
		mu      sync.Mutex
		stop    atomic.Bool
		failure bitvec.Vector
		got     bitvec.Vector
	)
	var wg sync.WaitGroup
	chunk := total / uint64(w)
	for wi := 0; wi < w; wi++ {
		lo := uint64(wi) * chunk
		hi := lo + chunk
		if wi == w-1 {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for x := lo; x < hi; x++ {
				if x%1024 == 0 && stop.Load() {
					return
				}
				v := bitvec.FromUint(x, n)
				out := sorter(v)
				if !out.Equal(v.Sorted()) {
					mu.Lock()
					if failure == nil {
						failure, got = v, out
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	res := Result{OK: failure == nil, Checked: total}
	if failure != nil {
		res.Checked = 0 // early stop: exact count not tracked
		if opts.Minimize {
			failure, got = minimize(failure, sorter)
		}
		res.Counterexample, res.Got = failure, got
	}
	return res
}

// SortsSampled checks the sorter on `samples` random n-bit inputs plus the
// standard adversarial family (all-zeros, all-ones, alternating, sorted,
// reverse-sorted, single-bit), in parallel. A non-positive samples clamps
// to 0: the deterministic adversarial family always runs, so the sweep is
// never vacuous.
func SortsSampled(n int, sorter BitSorter, samples int, seed int64, opts Options) Result {
	if samples < 0 {
		samples = 0
	}
	inputs := make(chan bitvec.Vector, 64)
	go func() {
		defer close(inputs)
		zero := bitvec.New(n)
		inputs <- zero
		ones := zero.Complement()
		inputs <- ones
		alt := bitvec.New(n)
		for i := 1; i < n; i += 2 {
			alt[i] = 1
		}
		inputs <- alt
		inputs <- alt.Complement()
		for m := 0; m <= n; m += max(1, n/8) {
			s := bitvec.New(n)
			for i := n - m; i < n; i++ {
				s[i] = 1
			}
			inputs <- s
			inputs <- s.Reverse()
		}
		for i := 0; i < n; i++ {
			s := bitvec.New(n)
			s[i] = 1
			inputs <- s
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < samples; i++ {
			inputs <- bitvec.Random(rng, n)
		}
	}()

	var (
		mu      sync.Mutex
		failure bitvec.Vector
		got     bitvec.Vector
		checked uint64
	)
	var wg sync.WaitGroup
	for wi := 0; wi < opts.workers(); wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range inputs {
				out := sorter(v)
				mu.Lock()
				checked++
				bad := failure == nil && !out.Equal(v.Sorted())
				if bad {
					failure, got = v.Clone(), out
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res := Result{OK: failure == nil, Checked: checked}
	if failure != nil {
		if opts.Minimize {
			failure, got = minimize(failure, sorter)
		}
		res.Counterexample, res.Got = failure, got
	}
	return res
}

// minimize greedily simplifies a failing input: try flipping each 1-bit to
// 0 and each 0-bit to 1 (preferring fewer 1s), keeping any change that
// still fails, until a fixed point.
func minimize(v bitvec.Vector, sorter BitSorter) (bitvec.Vector, bitvec.Vector) {
	fails := func(x bitvec.Vector) (bitvec.Vector, bool) {
		out := sorter(x)
		return out, !out.Equal(x.Sorted())
	}
	cur := v.Clone()
	curOut, _ := fails(cur)
	for changed := true; changed; {
		changed = false
		for i := range cur {
			if cur[i] == 0 {
				continue
			}
			cand := cur.Clone()
			cand[i] = 0
			if out, bad := fails(cand); bad {
				cur, curOut = cand, out
				changed = true
			}
		}
	}
	return cur, curOut
}

// Router is a tag-routing function returning a receives-from permutation.
type Router func(bitvec.Vector) []int

// ConcentratesAll exhaustively checks that the router sends the 0-tagged
// inputs of every n-bit tag pattern to the leading outputs via a valid
// permutation. n must be ≤ 24.
func ConcentratesAll(n int, route Router, opts Options) Result {
	return SortsAllBinary(n, func(tags bitvec.Vector) bitvec.Vector {
		p := route(tags)
		out := make(bitvec.Vector, len(tags))
		seen := make([]bool, len(tags))
		for j, i := range p {
			if i < 0 || i >= len(tags) || seen[i] {
				// Signal failure by returning a non-sorted marker.
				bad := tags.Clone()
				if len(bad) > 1 {
					bad[0], bad[len(bad)-1] = 1, 0
				}
				return bad
			}
			seen[i] = true
			out[j] = tags[i]
		}
		return out
	}, opts)
}

// Permuter realizes a destination assignment; it returns the receives-from
// permutation or an error.
type Permuter func(dest []int) ([]int, error)

// RearrangeableExhaustive checks every permutation of n lines is realized
// (n! checks; n must be ≤ 8).
func RearrangeableExhaustive(n int, route Permuter) (bool, []int, error) {
	if n > 8 {
		panic(fmt.Sprintf("verify: RearrangeableExhaustive with n=%d (max 8)", n))
	}
	dest := make([]int, n)
	for i := range dest {
		dest[i] = i
	}
	var bad []int
	var badErr error
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			p, err := route(dest)
			if err != nil {
				bad = append([]int(nil), dest...)
				badErr = err
				return false
			}
			for j, i := range p {
				if dest[i] != j {
					bad = append([]int(nil), dest...)
					badErr = fmt.Errorf("dest %v not realized by %v", dest, p)
					return false
				}
			}
			return true
		}
		for i := k; i < n; i++ {
			dest[k], dest[i] = dest[i], dest[k]
			ok := rec(k + 1)
			dest[k], dest[i] = dest[i], dest[k]
			if !ok {
				return false
			}
		}
		return true
	}
	if rec(0) {
		return true, nil, nil
	}
	return false, bad, badErr
}

// RearrangeableSampled checks `samples` random permutations in parallel,
// always preceded by a deterministic adversarial family (identity,
// reversal, adjacent transpositions, rotation by one — mirroring
// SortsSampled's fixed probes). A non-positive samples clamps to 0 and
// the family still runs, so the sweep never returns a vacuous pass.
func RearrangeableSampled(n int, route Permuter, samples int, seed int64, opts Options) (bool, []int, error) {
	if samples < 0 {
		samples = 0
	}
	type job struct{ dest []int }
	jobs := make(chan job, 32)
	go func() {
		defer close(jobs)
		ident := make([]int, n)
		rev := make([]int, n)
		rot := make([]int, n)
		swap := make([]int, n)
		for i := 0; i < n; i++ {
			ident[i] = i
			rev[i] = n - 1 - i
			rot[i] = (i + 1) % n
			swap[i] = i ^ 1
			if swap[i] >= n {
				swap[i] = i // odd n: last line fixed
			}
		}
		jobs <- job{dest: ident}
		jobs <- job{dest: rev}
		jobs <- job{dest: rot}
		jobs <- job{dest: swap}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < samples; i++ {
			jobs <- job{dest: rng.Perm(n)}
		}
	}()
	var (
		mu     sync.Mutex
		bad    []int
		badErr error
	)
	var wg sync.WaitGroup
	for wi := 0; wi < opts.workers(); wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p, err := route(j.dest)
				ok := err == nil
				if ok {
					for jj, i := range p {
						if j.dest[i] != jj {
							ok = false
							err = fmt.Errorf("dest not realized")
							break
						}
					}
				}
				if !ok {
					mu.Lock()
					if bad == nil {
						bad, badErr = j.dest, err
					}
					mu.Unlock()
					for range jobs {
						// Drain so the producer goroutine never blocks on a
						// full channel after an early failure.
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	return bad == nil, bad, badErr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
