package verify

// Wide (64-lane) exhaustive certification. For gate-level netlists the
// 0/1-principle sweep no longer evaluates one input at a time: inputs are
// enumerated 64 per block directly in lane-packed form and pushed through
// the compiled SWAR engine (netlist.Compiled), and the sortedness and
// ones-conservation checks are themselves evaluated bitwise across all 64
// lanes. This is what makes exhaustive verification at n = 16 (65536
// inputs) and beyond routine rather than a budget item.

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

// lanePatterns[t] has bit j set iff bit t of the lane index j is set; it
// is the packed enumeration of the low six input bits of a 64-input block
// (the remaining bits are constant within a block).
var lanePatterns = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// packEnumBlock fills in with the packed input words of the 64 vectors
// x = base .. base+63 under the bitvec.FromUint convention (input terminal
// i carries bit n-1-i of x). base must be a multiple of 64 when n ≥ 6.
func packEnumBlock(in []uint64, base uint64, n int) {
	for i := 0; i < n; i++ {
		t := uint(n - 1 - i)
		if t < 6 {
			in[i] = lanePatterns[t]
		} else if (base>>t)&1 != 0 {
			in[i] = ^uint64(0)
		} else {
			in[i] = 0
		}
	}
}

// addPlane adds the bit-plane x into the lane-sliced vertical counter sum
// (carry-ripple across planes; each lane accumulates independently).
func addPlane(sum []uint64, x uint64) {
	for p := 0; p < len(sum) && x != 0; p++ {
		carry := sum[p] & x
		sum[p] ^= x
		x = carry
	}
}

// sweepState is the shared failure slot of a parallel wide sweep.
type sweepState struct {
	mu      sync.Mutex
	stop    atomic.Bool
	failure bitvec.Vector
	got     bitvec.Vector
}

func (st *sweepState) record(v, got bitvec.Vector) {
	st.mu.Lock()
	if st.failure == nil {
		st.failure, st.got = v, got
	}
	st.mu.Unlock()
	st.stop.Store(true)
}

// SortsAllCircuit exhaustively checks that a gate-level binary-sorter
// netlist sorts every n-bit input, where n = c.NumInputs() (n ≤ 30,
// NumOutputs must equal n). All 2^n inputs are swept 64 lanes at a time
// through the compiled engine; a lane fails when its output is not sorted
// ascending or does not conserve the input's ones-count — together exactly
// out == sorted(in). Blocks are distributed across workers with an atomic
// cursor.
func SortsAllCircuit(c *netlist.Circuit, opts Options) Result {
	n := c.NumInputs()
	if n > 30 {
		panic(fmt.Sprintf("verify: SortsAllCircuit with n=%d (max 30)", n))
	}
	if c.NumOutputs() != n {
		panic(fmt.Sprintf("verify: SortsAllCircuit on %d-in/%d-out circuit", n, c.NumOutputs()))
	}
	p := c.Compile()
	total := uint64(1) << uint(n)
	valid := ^uint64(0)
	if total < 64 {
		valid = (uint64(1) << total) - 1
	}
	nblocks := (total + 63) / 64
	w := uint64(opts.workers())
	if w > nblocks {
		w = nblocks
	}
	planes := bits.Len(uint(n))
	var st sweepState
	var cursor atomic.Uint64
	sweep := func() {
		in := make([]uint64, n)
		out := make([]uint64, n)
		sumIn := make([]uint64, planes)
		sumOut := make([]uint64, planes)
		for {
			blk := cursor.Add(1) - 1
			if blk >= nblocks {
				return
			}
			if blk%16 == 0 && st.stop.Load() {
				return
			}
			base := blk * 64
			packEnumBlock(in, base, n)
			p.EvalPackedInto(out, in)
			// Sorted ascending: no lane may have a 1 before a 0.
			var bad uint64
			for i := 1; i < n; i++ {
				bad |= out[i-1] &^ out[i]
			}
			// Ones conservation, lane-sliced: the vertical counters of the
			// input and output planes must agree in every lane.
			for i := range sumIn {
				sumIn[i], sumOut[i] = 0, 0
			}
			for i := 0; i < n; i++ {
				addPlane(sumIn, in[i])
				addPlane(sumOut, out[i])
			}
			for i := range sumIn {
				bad |= sumIn[i] ^ sumOut[i]
			}
			bad &= valid
			if bad != 0 {
				lane := uint64(bits.TrailingZeros64(bad))
				v := bitvec.FromUint(base+lane, n)
				st.record(v, p.Eval(v))
				return
			}
		}
	}
	if w <= 1 {
		sweep()
	} else {
		var wg sync.WaitGroup
		for i := uint64(0); i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sweep()
			}()
		}
		wg.Wait()
	}
	res := Result{OK: st.failure == nil, Checked: total}
	if st.failure != nil {
		res.Checked = 0 // early stop: exact count not tracked
		failure, got := st.failure, st.got
		if opts.Minimize {
			failure, got = minimize(failure, p.Eval)
		}
		res.Counterexample, res.Got = failure, got
	}
	return res
}
