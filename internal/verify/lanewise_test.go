package verify

import (
	"strings"
	"testing"
)

func TestCheckPermute(t *testing.T) {
	c := NewLaneChecker(4)
	dest := []int{2, 0, 3, 1}
	out := []int{1, 3, 0, 2} // realizes dest: dest[out[j]] == j
	if err := c.CheckPermute(dest, out); err != nil {
		t.Fatalf("clean permute flagged: %v", err)
	}
	cases := []struct {
		out  []int
		want string
	}{
		{[]int{1, 3, 0}, "outputs for width"},
		{[]int{1, 3, 0, 4}, "invalid input"},
		{[]int{1, 3, 0, 0}, "more than once"},
		{[]int{3, 1, 0, 2}, "destined for"},
	}
	for _, tc := range cases {
		err := c.CheckPermute(dest, tc.out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("CheckPermute(%v) = %v, want %q", tc.out, err, tc.want)
		}
	}
}

func TestCheckConcentrate(t *testing.T) {
	c := NewLaneChecker(4)
	marked := []bool{true, false, true, false}
	if err := c.CheckConcentrate(marked, []int{0, 2, 1, 3}, 2); err != nil {
		t.Fatalf("clean concentrate flagged: %v", err)
	}
	if err := c.CheckConcentrate(marked, []int{2, 0, 3, 1}, 2); err != nil {
		t.Fatalf("clean concentrate (reordered block) flagged: %v", err)
	}
	cases := []struct {
		out   []int
		count int
		want  string
	}{
		{[]int{0, 2, 1}, 2, "outputs for width"},
		{[]int{0, 2, 1, 3}, -1, "concentrated count"},
		{[]int{0, 2, 1, 3}, 5, "concentrated count"},
		{[]int{0, 4, 1, 3}, 2, "invalid input"},
		{[]int{0, 0, 1, 3}, 2, "more than once"},
		{[]int{0, 1, 2, 3}, 2, "idle input"},
		{[]int{0, 2, 1, 3}, 1, "marked input"},
		// Wrong count with consistent marks: pigeonhole forces a violation.
		{[]int{0, 2, 1, 3}, 3, "idle input"},
	}
	for _, tc := range cases {
		err := c.CheckConcentrate(marked, tc.out, tc.count)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("CheckConcentrate(%v, %d) = %v, want %q", tc.out, tc.count, err, tc.want)
		}
	}
}

func TestCheckSortWords(t *testing.T) {
	c := NewLaneChecker(4)
	keys := []uint64{30, 10, 40, 20}
	sorted := []uint64{10, 20, 30, 40}
	perm := []int{1, 3, 0, 2}
	if err := c.CheckSortWords(keys, sorted, perm); err != nil {
		t.Fatalf("clean sort flagged: %v", err)
	}
	if err := c.CheckSortWords(keys, sorted, []int{1, 3, 0}); err == nil {
		t.Fatal("short perm accepted")
	}
	if err := c.CheckSortWords(keys, sorted, []int{1, 3, 0, 4}); err == nil {
		t.Fatal("invalid index accepted")
	}
	if err := c.CheckSortWords(keys, sorted, []int{1, 3, 0, 0}); err == nil {
		t.Fatal("duplicated index accepted")
	}
	if err := c.CheckSortWords(keys, []uint64{10, 20, 30, 41}, perm); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if err := c.CheckSortWords(keys, []uint64{20, 10, 30, 40}, []int{3, 1, 0, 2}); err == nil {
		t.Fatal("out-of-order keys accepted")
	}
}

func TestLaneCheckerAllocFree(t *testing.T) {
	c := NewLaneChecker(256)
	dest := make([]int, 256)
	out := make([]int, 256)
	for i := range dest {
		dest[i] = i
		out[i] = i
	}
	// Warm the pool, then pin zero steady-state allocations.
	if err := c.CheckPermute(dest, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.CheckPermute(dest, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CheckPermute allocates %v per run", allocs)
	}
}
