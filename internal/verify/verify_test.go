package verify

import (
	"errors"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/cmpnet"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/permnet"
	"absort/internal/prefixadd"
)

// TestSortsAllBinaryPositive certifies all three core networks at n = 16
// with the parallel sweep.
func TestSortsAllBinaryPositive(t *testing.T) {
	sorters := map[string]BitSorter{
		"prefix":     core.NewPrefixSorter(16, prefixadd.Prefix).Sort,
		"mux-merger": core.NewMuxMergerSorter(16).Sort,
		"fish":       core.NewFishSorter(16, 4).Sort,
	}
	for name, s := range sorters {
		res := SortsAllBinary(16, s, Options{})
		if !res.OK {
			t.Errorf("%s: counterexample %s -> %s", name, res.Counterexample, res.Got)
		}
		if res.Checked != 1<<16 {
			t.Errorf("%s: checked %d inputs, want %d", name, res.Checked, 1<<16)
		}
	}
}

// TestSortsAllBinaryNegative finds and minimizes a counterexample for a
// deliberately broken sorter.
func TestSortsAllBinaryNegative(t *testing.T) {
	broken := func(v bitvec.Vector) bitvec.Vector {
		out := v.Sorted()
		if v.Ones() == 3 { // fails exactly on weight-3 inputs
			return v.Clone()
		}
		return out
	}
	res := SortsAllBinary(10, broken, Options{Minimize: true})
	if res.OK {
		t.Fatal("broken sorter certified")
	}
	if res.Counterexample == nil || res.Counterexample.Ones() != 3 {
		t.Errorf("counterexample %s not minimized to weight 3", res.Counterexample)
	}
	if res.Got == nil {
		t.Error("missing Got")
	}
}

// TestSortsSampled runs the sampled sweep on a correct and a broken
// sorter.
func TestSortsSampled(t *testing.T) {
	good := core.NewMuxMergerSorter(64).Sort
	res := SortsSampled(64, good, 500, 1, Options{Workers: 4})
	if !res.OK {
		t.Errorf("good sorter failed on %s", res.Counterexample)
	}
	if res.Checked < 500 {
		t.Errorf("checked only %d inputs", res.Checked)
	}
	broken := func(v bitvec.Vector) bitvec.Vector { return v.Clone() }
	res = SortsSampled(64, broken, 100, 1, Options{Minimize: true})
	if res.OK {
		t.Fatal("identity certified as sorter")
	}
	// Minimization drives the counterexample down to a single offending 1
	// (any vector with one 1 not already in place still fails identity...
	// the minimum failing weight is 1).
	if res.Counterexample.Ones() > 1 {
		t.Errorf("counterexample %s not minimal", res.Counterexample)
	}
}

// TestConcentratesAll certifies the replay routers at n = 12.
func TestConcentratesAll(t *testing.T) {
	res := ConcentratesAll(12, func(tags bitvec.Vector) []int {
		// Pad to the next power of two for the router, then strip.
		padded := bitvec.Concat(tags, bitvec.New(4).Complement())
		p := concentrator.RouteRanking(padded)
		out := make([]int, 0, 12)
		for _, i := range p {
			if i < 12 {
				out = append(out, i)
			}
		}
		return out
	}, Options{})
	if !res.OK {
		t.Errorf("ranking router failed: %s", res.Counterexample)
	}
	resMM := ConcentratesAll(16, concentrator.RouteMuxMerger, Options{})
	if !resMM.OK {
		t.Errorf("mux-merger router failed: %s", resMM.Counterexample)
	}
}

// TestConcentratesAllNegative: a router that duplicates an input is
// rejected.
func TestConcentratesAllNegative(t *testing.T) {
	res := ConcentratesAll(6, func(tags bitvec.Vector) []int {
		return []int{0, 0, 1, 2, 3, 4}
	}, Options{})
	if res.OK {
		t.Fatal("duplicating router certified")
	}
}

// TestRearrangeableExhaustive certifies Beneš and the radix permuter on
// all 8! permutations... n=6 isn't a power of two, use n=8.
func TestRearrangeableExhaustive(t *testing.T) {
	benes := func(dest []int) ([]int, error) {
		cfg, _, err := permnet.RouteBenes(dest)
		if err != nil {
			return nil, err
		}
		in := make([]int, len(dest))
		for i := range in {
			in[i] = i
		}
		out := permnet.ApplyBenes(cfg, in)
		p := make([]int, len(dest))
		for j, x := range out {
			p[j] = x
		}
		return p, nil
	}
	ok, bad, err := RearrangeableExhaustive(8, benes)
	if !ok {
		t.Errorf("Beneš not rearrangeable: %v (%v)", bad, err)
	}
	radix := permnet.NewRadixPermuter(8, concentrator.MuxMerger, 0)
	ok, bad, err = RearrangeableExhaustive(8, radix.Route)
	if !ok {
		t.Errorf("radix permuter not rearrangeable: %v (%v)", bad, err)
	}
}

// TestRearrangeableExhaustiveNegative: a single Batcher merge stage is not
// a permuter.
func TestRearrangeableExhaustiveNegative(t *testing.T) {
	bogus := func(dest []int) ([]int, error) {
		p := make([]int, len(dest))
		for i := range p {
			p[i] = i // identity: realizes only the identity assignment
		}
		return p, nil
	}
	ok, bad, err := RearrangeableExhaustive(4, bogus)
	if ok {
		t.Fatal("identity certified as rearrangeable")
	}
	if bad == nil || err == nil {
		t.Error("missing counterexample")
	}
}

// TestRearrangeableSampled: parallel sampled sweep over wide networks.
func TestRearrangeableSampled(t *testing.T) {
	radix := permnet.NewRadixPermuter(64, concentrator.Fish, 0)
	ok, bad, err := RearrangeableSampled(64, radix.Route, 200, 7, Options{})
	if !ok {
		t.Errorf("radix permuter failed on %v: %v", bad, err)
	}
	failing := func(dest []int) ([]int, error) {
		return nil, errors.New("router down")
	}
	ok, _, err = RearrangeableSampled(16, failing, 10, 7, Options{Workers: 2})
	if ok || err == nil {
		t.Error("failing router certified")
	}
}

// TestSampledNeverVacuous pins the sample-count clamps: a sweep asked
// for zero (or negative) random samples still runs its deterministic
// adversarial family, so a broken implementation is detected rather
// than vacuously certified. RearrangeableSampled used to enqueue no
// probes at all and return (true, nil, nil).
func TestSampledNeverVacuous(t *testing.T) {
	brokenSorter := func(v bitvec.Vector) bitvec.Vector {
		return v.Clone() // never sorts anything
	}
	brokenRouter := func(dest []int) ([]int, error) {
		p := make([]int, len(dest)) // routes everything to output 0's source
		return p, nil
	}
	for _, samples := range []int{0, -3} {
		if res := SortsSampled(16, brokenSorter, samples, 1, Options{}); res.OK {
			t.Errorf("SortsSampled(samples=%d) certified a broken sorter", samples)
		}
		ok, bad, err := RearrangeableSampled(16, brokenRouter, samples, 1, Options{Workers: -2})
		if ok {
			t.Errorf("RearrangeableSampled(samples=%d) certified a broken router", samples)
		}
		if ok == false && bad == nil && err == nil {
			t.Errorf("RearrangeableSampled(samples=%d) failed without a counterexample", samples)
		}
	}
	// The clamped sweeps still certify correct implementations.
	good := core.NewMuxMergerSorter(16).Sort
	if res := SortsSampled(16, good, 0, 1, Options{}); !res.OK || res.Checked == 0 {
		t.Errorf("SortsSampled(samples=0) on a correct sorter: %+v", res)
	}
	radix := permnet.NewRadixPermuter(16, concentrator.MuxMerger, 0)
	if ok, bad, err := RearrangeableSampled(16, radix.Route, 0, 1, Options{}); !ok {
		t.Errorf("RearrangeableSampled(samples=0) on a correct permuter failed on %v: %v", bad, err)
	}
}

// TestCmpnetThroughVerify certifies the comparator networks through the
// toolkit as well (same zero-one principle, parallel sweep).
func TestCmpnetThroughVerify(t *testing.T) {
	for _, nw := range []interface {
		ApplyBits(bitvec.Vector) bitvec.Vector
		Name() string
	}{
		cmpnet.OddEvenMergeSort(16), cmpnet.BitonicSort(16),
		cmpnet.AlternativeOEMSort(16), cmpnet.PeriodicBalancedSort(16),
	} {
		res := SortsAllBinary(16, nw.ApplyBits, Options{Workers: 8})
		if !res.OK {
			t.Errorf("%s: counterexample %s", nw.Name(), res.Counterexample)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SortsAllBinary too wide", func() {
		SortsAllBinary(31, func(v bitvec.Vector) bitvec.Vector { return v }, Options{})
	})
	mustPanic("RearrangeableExhaustive too wide", func() {
		RearrangeableExhaustive(9, nil)
	})
}
