// Package columnsort implements Leighton's columnsort algorithm [14] and
// the cost/time model of its time-multiplexed network version — the only
// other O(n) bit-level cost binary sorting network the paper compares
// Network 3 against (Section III-C).
//
// Columnsort arranges n = r·s elements in an r×s matrix with
// r ≥ 2(s−1)² and r divisible by s, and sorts in eight steps, four of
// which sort columns; the other four permute entries (transpose,
// untranspose, shift, unshift). Its time-multiplexed network realization
// funnels the lg² n columns of n/lg² n elements through Batcher sorters;
// the paper's point of comparison is that this requires the data to be
// pipelined separately through each of the four sorters, whereas the fish
// sorter pipelines through a single n/lg n-input sorter.
package columnsort

import (
	"fmt"
	"math"
	"sort"

	"absort/internal/bitvec"
	"absort/internal/core"
)

// Validate checks Leighton's parameter constraints: n = r·s, s ≥ 1,
// r divisible by s, and r ≥ 2(s−1)².
func Validate(r, s int) error {
	if r <= 0 || s <= 0 {
		return fmt.Errorf("columnsort: non-positive dimensions %d×%d", r, s)
	}
	if s > 1 && r%s != 0 {
		return fmt.Errorf("columnsort: r=%d not divisible by s=%d", r, s)
	}
	if r < 2*(s-1)*(s-1) {
		return fmt.Errorf("columnsort: r=%d < 2(s-1)² = %d", r, 2*(s-1)*(s-1))
	}
	return nil
}

// Dimensions picks columnsort dimensions for n: the largest s with
// s | n/s... it searches s from √(n) down for the first (r, s) satisfying
// Validate. Returns an error if only the trivial s = 1 works and n itself
// is the single column (always valid).
func Dimensions(n int) (r, s int) {
	best := 1
	for cand := 2; cand*cand <= n; cand++ {
		if n%cand != 0 {
			continue
		}
		if Validate(n/cand, cand) == nil {
			best = cand
		}
	}
	return n / best, best
}

// Sort sorts in (length r·s) with Leighton's eight-step columnsort and
// returns the result in column-major order (which for a fully sorted
// matrix read column-by-column is simply ascending order).
func Sort(in []int, r, s int) ([]int, error) {
	if err := Validate(r, s); err != nil {
		return nil, err
	}
	if len(in) != r*s {
		return nil, fmt.Errorf("columnsort: %d elements for %d×%d", len(in), r, s)
	}
	// The matrix is kept column-major: m[j*r+i] is row i of column j.
	m := append([]int(nil), in...)

	sortCols := func(v []int, rows int) {
		for j := 0; j*rows < len(v); j++ {
			col := v[j*rows : (j+1)*rows]
			sort.Ints(col)
		}
	}
	// Step 1: sort columns.
	sortCols(m, r)
	// Step 2: transpose — read column-major, write row-major (into the
	// same r×s shape, kept column-major).
	m = transpose(m, r, s)
	// Step 3: sort columns.
	sortCols(m, r)
	// Step 4: untranspose.
	m = untranspose(m, r, s)
	// Step 5: sort columns.
	sortCols(m, r)
	// Step 6: shift down by r/2 into s+1 columns, padding with −∞ on top
	// and +∞ at bottom.
	h := r / 2
	shifted := make([]int, 0, (s+1)*r)
	for i := 0; i < h; i++ {
		shifted = append(shifted, math.MinInt)
	}
	shifted = append(shifted, m...)
	for i := 0; i < r-h; i++ {
		shifted = append(shifted, math.MaxInt)
	}
	// Step 7: sort the s+1 columns.
	sortCols(shifted, r)
	// Step 8: unshift — drop the padding.
	out := shifted[h : h+r*s]
	return append([]int(nil), out...), nil
}

// transpose reads the column-major r×s matrix in column order and writes
// the sequence back in row order, returning the new column-major matrix.
func transpose(m []int, r, s int) []int {
	out := make([]int, len(m))
	for pos, x := range m { // pos enumerates column-major = sorted read order
		i, j := pos/s, pos%s // write row-major
		out[j*r+i] = x
	}
	return out
}

// untranspose is the inverse of transpose.
func untranspose(m []int, r, s int) []int {
	out := make([]int, len(m))
	for pos := range m {
		i, j := pos/s, pos%s
		out[pos] = m[j*r+i]
	}
	return out
}

// SortBits runs columnsort on a binary sequence.
func SortBits(v bitvec.Vector, r, s int) (bitvec.Vector, error) {
	in := make([]int, len(v))
	for i, b := range v {
		in[i] = int(b)
	}
	out, err := Sort(in, r, s)
	if err != nil {
		return nil, err
	}
	res := make(bitvec.Vector, len(v))
	for i, x := range out {
		res[i] = bitvec.Bit(x)
	}
	return res, nil
}

// NetworkModel is the cost/time model of the time-multiplexed columnsort
// network of [14] as discussed in Section III-C: lg² n columns of
// m = n/lg² n elements, each column sort realized by an m-input Batcher
// sorter, with four sorter uses (one per sorting step).
type NetworkModel struct {
	N          int // total inputs
	Columns    int // number of columns = lg² n
	SorterSize int // m = n / lg² n
	// SorterCost is one m-input Batcher sorter: (lg²m − lg m + 4)m/4 − 1.
	SorterCost int
	// Sorters is the number of separately pipelined sorters (4: steps
	// 1, 3, 5, 7), the paper's pipelining-burden point.
	Sorters int
	// MuxCost is the multiplexing/demultiplexing circuitry, comparable to
	// the (n,k)-mux and (k,n)-demux of the fish sorter: ~2n.
	MuxCost int
	// TimeUnpipelined: 4 sorting steps × (columns × Batcher depth).
	TimeUnpipelined int
	// TimePipelined: 4 sorting steps × (Batcher depth + columns − 1),
	// with each sorter's inputs pipelined separately.
	TimePipelined int
}

// TotalCost returns switching cost: the four sorters plus multiplexing.
func (m NetworkModel) TotalCost() int { return m.Sorters*m.SorterCost + m.MuxCost }

// TimeMultiplexedModel evaluates the model at n (a power of two ≥ 16 with
// lg² n ≤ n and n/lg²n rounded down to a power of two for the Batcher
// sorter).
func TimeMultiplexedModel(n int) NetworkModel {
	lg := core.Lg(n)
	cols := lg * lg
	m := n / cols
	// Round the sorter width down to a power of two (the model's Batcher
	// sorter needs one); the column count rises correspondingly.
	sz := 1
	for sz*2 <= m {
		sz *= 2
	}
	cols = (n + sz - 1) / sz
	lgm := core.Lg(sz)
	sorterCost := (lgm*lgm-lgm+4)*sz/4 - 1
	depth := lgm * (lgm + 1) / 2
	return NetworkModel{
		N:               n,
		Columns:         cols,
		SorterSize:      sz,
		SorterCost:      sorterCost,
		Sorters:         4,
		MuxCost:         2 * n,
		TimeUnpipelined: 4 * cols * depth,
		TimePipelined:   4 * (depth + cols - 1),
	}
}
