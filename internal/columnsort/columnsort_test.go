package columnsort

import (
	"math/rand"
	"sort"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/core"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		r, s int
		ok   bool
	}{
		{18, 3, true},   // r ≥ 2(s−1)² = 8 and 18 % 3 == 0
		{8, 3, false},   // 8 % 3 != 0
		{9, 3, true},    // 9 % 3 == 0 and 9 ≥ 8
		{6, 3, false},   // 6 < 8
		{32, 4, true},   // 32 % 4 == 0 and 32 ≥ 18
		{16, 4, false},  // 16 < 18
		{16, 1, true},   // single column always fine
		{-1, 2, false},  // negative
		{18, -1, false}, // negative
	}
	for _, c := range cases {
		err := Validate(c.r, c.s)
		if c.ok && err != nil {
			t.Errorf("Validate(%d,%d) = %v, want ok", c.r, c.s, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%d,%d) accepted", c.r, c.s)
		}
	}
}

func TestDimensions(t *testing.T) {
	for _, n := range []int{64, 72, 256, 1024, 4096} {
		r, s := Dimensions(n)
		if r*s != n {
			t.Errorf("Dimensions(%d) = %d×%d ≠ n", n, r, s)
		}
		if err := Validate(r, s); err != nil {
			t.Errorf("Dimensions(%d) invalid: %v", n, err)
		}
	}
}

// TestColumnsortSortsInts verifies the eight-step algorithm on random int
// inputs at several shapes.
func TestColumnsortSortsInts(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, tc := range []struct{ r, s int }{
		{8, 2}, {9, 3}, {18, 3}, {32, 4}, {50, 5}, {128, 4},
	} {
		n := tc.r * tc.s
		for trial := 0; trial < 50; trial++ {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.Intn(200) - 100
			}
			want := append([]int(nil), in...)
			sort.Ints(want)
			got, err := Sort(in, tc.r, tc.s)
			if err != nil {
				t.Fatalf("%d×%d: %v", tc.r, tc.s, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%d×%d: columnsort failed: got %v want %v",
						tc.r, tc.s, got, want)
				}
			}
		}
	}
}

// TestColumnsortSortsBits verifies the binary case exhaustively for a
// small shape (8×2 = 16 inputs) and randomly for a large one.
func TestColumnsortSortsBits(t *testing.T) {
	bitvec.All(16, func(v bitvec.Vector) bool {
		got, err := SortBits(v, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v.Sorted()) {
			t.Errorf("SortBits(%s) = %s", v, got)
			return false
		}
		return true
	})
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		v := bitvec.Random(rng, 512)
		got, err := SortBits(v, 128, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v.Sorted()) {
			t.Fatalf("SortBits failed on 512-bit input")
		}
	}
}

// TestColumnsortDegenerateSingleColumn: s = 1 is a plain sort.
func TestColumnsortDegenerateSingleColumn(t *testing.T) {
	in := []int{5, 3, 1, 4, 2}
	got, err := Sort(in, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("single column sort failed: %v", got)
		}
	}
}

func TestSortErrors(t *testing.T) {
	if _, err := Sort([]int{1, 2, 3}, 2, 3); err == nil {
		t.Error("accepted wrong length")
	}
	if _, err := Sort(make([]int, 12), 4, 3); err == nil {
		t.Error("accepted r < 2(s-1)²")
	}
	if _, err := SortBits(bitvec.New(12), 4, 3); err == nil {
		t.Error("SortBits accepted invalid shape")
	}
}

// TestSortDoesNotMutateInput guards against aliasing.
func TestSortDoesNotMutateInput(t *testing.T) {
	in := []int{9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 11, 10, 13, 12, 15, 14, 17, 16}
	orig := append([]int(nil), in...)
	if _, err := Sort(in, 18, 1); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("Sort mutated its input")
		}
	}
}

// TestTimeMultiplexedModel checks the O(n)-cost claim: the model's total
// cost is ≤ c·n for n in the practical range, and the pipelined time is
// O(lg² n) while the unpipelined time is Θ(lg⁴ n)-ish.
func TestTimeMultiplexedModel(t *testing.T) {
	for _, n := range []int{1024, 4096, 65536, 1 << 20} {
		m := TimeMultiplexedModel(n)
		if m.SorterSize*m.Columns < n {
			t.Errorf("n=%d: model covers %d < n inputs", n, m.SorterSize*m.Columns)
		}
		if m.TotalCost() > 12*n {
			t.Errorf("n=%d: columnsort model cost %d not O(n)", n, m.TotalCost())
		}
		lg := core.Lg(n)
		if m.TimePipelined > 8*lg*lg {
			t.Errorf("n=%d: pipelined time %d > 8 lg²n", n, m.TimePipelined)
		}
		if m.TimeUnpipelined <= m.TimePipelined {
			t.Errorf("n=%d: unpipelined %d ≤ pipelined %d",
				n, m.TimeUnpipelined, m.TimePipelined)
		}
		if m.Sorters != 4 {
			t.Errorf("n=%d: %d sorters, want 4", n, m.Sorters)
		}
	}
}
