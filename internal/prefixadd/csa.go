package prefixadd

import "absort/internal/netlist"

// BuildCSA appends a carry-save adder (3:2 compressor per bit) reducing
// three numbers to two whose sum is unchanged: sum_i = x_i ^ y_i ^ z_i and
// carry_{i+1} = majority(x_i, y_i, z_i). Cost O(w), depth 2.
func BuildCSA(b *netlist.Builder, x, y, z []netlist.Wire) (sum, carry []netlist.Wire) {
	w := max(len(x), max(len(y), len(z)))
	x, y, z = pad(b, x, w), pad(b, y, w), pad(b, z, w)
	sum = make([]netlist.Wire, w)
	carry = make([]netlist.Wire, w+1)
	carry[0] = b.Const(0)
	for i := 0; i < w; i++ {
		xy := b.Xor(x[i], y[i])
		sum[i] = b.Xor(xy, z[i])
		// majority = (x AND y) OR (z AND (x XOR y))
		carry[i+1] = b.Or(b.And(x[i], y[i]), b.And(z[i], xy))
	}
	return sum, carry
}

// BuildPopCountCSA appends a ones counter built as a carry-save adder
// tree: the n input bits, treated as n one-bit numbers, are compressed
// 3-to-2 until two numbers remain, which a parallel-prefix adder combines.
// This is the classical O(n)-cost, O(lg n)-depth counter used by the
// Boolean sorting circuits of Muller–Preparata [17] and Wegener [26] that
// Section I contrasts the paper's networks with.
func BuildPopCountCSA(b *netlist.Builder, in []netlist.Wire) []netlist.Wire {
	n := len(in)
	if n == 0 {
		panic("prefixadd: BuildPopCountCSA of no inputs")
	}
	nums := make([][]netlist.Wire, n)
	for i, w := range in {
		nums[i] = []netlist.Wire{w}
	}
	for len(nums) > 2 {
		var next [][]netlist.Wire
		i := 0
		for ; i+2 < len(nums); i += 3 {
			s, c := BuildCSA(b, nums[i], nums[i+1], nums[i+2])
			next = append(next, s, c)
		}
		next = append(next, nums[i:]...)
		nums = next
	}
	var out []netlist.Wire
	if len(nums) == 1 {
		out = nums[0]
	} else {
		out = BuildPrefixAdd(b, nums[0], nums[1])
	}
	if w := Width(n); len(out) > w {
		out = out[:w]
	}
	return pad(b, out, Width(n))
}
