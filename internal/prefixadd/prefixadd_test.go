package prefixadd

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

func TestToFromBits(t *testing.T) {
	for x := 0; x < 64; x++ {
		if got := FromBits(ToBits(x, 8)); got != x {
			t.Fatalf("round trip %d -> %d", x, got)
		}
	}
	if FromBits(nil) != 0 {
		t.Error("FromBits(nil) != 0")
	}
}

func TestWidth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5, 1024: 11}
	for n, w := range cases {
		if got := Width(n); got != w {
			t.Errorf("Width(%d) = %d, want %d", n, got, w)
		}
	}
}

// TestAddersExhaustive checks both adders on every pair of w-bit operands
// for w up to 5.
func TestAddersExhaustive(t *testing.T) {
	for _, adder := range []Adder{Ripple, Prefix} {
		for w := 1; w <= 5; w++ {
			c := AdderCircuit(w, adder)
			for x := 0; x < 1<<uint(w); x++ {
				for y := 0; y < 1<<uint(w); y++ {
					in := append(bitvec.Vector(ToBits(x, w)), ToBits(y, w)...)
					got := FromBits(c.Eval(in))
					if got != x+y {
						t.Fatalf("%s w=%d: %d+%d = %d", adder, w, x, y, got)
					}
				}
			}
		}
	}
}

// TestAddersRandomWide checks both adders on random wide operands.
func TestAddersRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, adder := range []Adder{Ripple, Prefix} {
		for _, w := range []int{6, 9, 16, 20} {
			c := AdderCircuit(w, adder)
			for i := 0; i < 200; i++ {
				x := rng.Intn(1 << uint(w))
				y := rng.Intn(1 << uint(w))
				in := append(bitvec.Vector(ToBits(x, w)), ToBits(y, w)...)
				if got := FromBits(c.Eval(in)); got != x+y {
					t.Fatalf("%s w=%d: %d+%d = %d", adder, w, x, y, got)
				}
			}
		}
	}
}

// TestPrefixAdderDepth checks the headline property: logarithmic depth for
// the prefix adder vs linear for ripple, with linear cost for both.
func TestPrefixAdderDepth(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32} {
		rip := AdderCircuit(w, Ripple).Stats()
		pre := AdderCircuit(w, Prefix).Stats()
		lg := 0
		for 1<<uint(lg) < w {
			lg++
		}
		// A Brent–Kung combine node is two gate levels (AND then OR), so the
		// 2 lg w combine-node depth of [5] is 4 lg w + O(1) in unit depth.
		if pre.UnitDepth > 4*lg+4 {
			t.Errorf("w=%d: prefix adder depth %d > 4 lg w + 4 = %d", w, pre.UnitDepth, 4*lg+4)
		}
		if rip.UnitDepth < w {
			t.Errorf("w=%d: ripple adder depth %d suspiciously low", w, rip.UnitDepth)
		}
		if pre.UnitCost > 10*w {
			t.Errorf("w=%d: prefix adder cost %d not linear (> 10w)", w, pre.UnitCost)
		}
		if w >= 16 && pre.UnitDepth >= rip.UnitDepth {
			t.Errorf("w=%d: prefix depth %d not better than ripple %d",
				w, pre.UnitDepth, rip.UnitDepth)
		}
	}
}

// TestPopCountExhaustive verifies the ones counter on every input for
// n ≤ 10, both adders.
func TestPopCountExhaustive(t *testing.T) {
	for _, adder := range []Adder{Ripple, Prefix} {
		for _, n := range []int{1, 2, 3, 5, 8, 10} {
			c := PopCountCircuit(n, adder)
			bitvec.All(n, func(v bitvec.Vector) bool {
				if got := FromBits(c.Eval(v)); got != v.Ones() {
					t.Errorf("%s popcount(%s) = %d, want %d", adder, v, got, v.Ones())
					return false
				}
				return true
			})
		}
	}
}

// TestPopCountRandomWide verifies large counters and their linear cost.
func TestPopCountRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{64, 256, 1024} {
		c := PopCountCircuit(n, Prefix)
		for i := 0; i < 30; i++ {
			v := bitvec.Random(rng, n)
			if got := FromBits(c.Eval(v)); got != v.Ones() {
				t.Fatalf("popcount(n=%d) = %d, want %d", n, got, v.Ones())
			}
		}
		if s := c.Stats(); s.UnitCost > 16*n {
			t.Errorf("n=%d: popcount cost %d not linear", n, s.UnitCost)
		}
	}
}

// TestPopCountOutputWidth checks the counter output is Width(n) bits and
// handles the all-ones input (count = n, the only value needing the top
// bit for power-of-two n).
func TestPopCountOutputWidth(t *testing.T) {
	for _, n := range []int{2, 4, 16, 32} {
		c := PopCountCircuit(n, Prefix)
		if c.NumOutputs() != Width(n) {
			t.Errorf("n=%d: %d output bits, want %d", n, c.NumOutputs(), Width(n))
		}
		ones := make(bitvec.Vector, n)
		for i := range ones {
			ones[i] = 1
		}
		if got := FromBits(c.Eval(ones)); got != n {
			t.Errorf("n=%d: popcount(all ones) = %d", n, got)
		}
	}
}

func TestAdderString(t *testing.T) {
	if Ripple.String() != "ripple" || Prefix.String() != "prefix" {
		t.Error("Adder.String misnamed")
	}
	if Adder(9).String() == "" {
		t.Error("unknown adder string empty")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("unknown adder", func() { AdderCircuit(4, Adder(7)) })
	mustPanic("popcount empty", func() { PopCountCircuit(0, Ripple) })
}

// TestPopCountCSAExhaustive verifies the carry-save counter on every input
// for small n and random wide inputs.
func TestPopCountCSAExhaustive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 9, 16} {
		b := newCSACounter(n)
		bitvec.All(n, func(v bitvec.Vector) bool {
			if got := FromBits(b.Eval(v)); got != v.Ones() {
				t.Errorf("n=%d: CSA popcount(%s) = %d, want %d", n, v, got, v.Ones())
				return false
			}
			return true
		})
	}
}

// TestPopCountCSALinearCostLogDepth: O(n) cost, O(lg n) depth — the
// property the Boolean sorting circuits of [17], [26] rely on, which the
// prefix-adder tree (O(lg n lg lg n) depth) does not deliver.
func TestPopCountCSALinearCostLogDepth(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		st := newCSACounter(n).Stats()
		lg := 0
		for 1<<uint(lg) < n {
			lg++
		}
		if st.UnitCost > 16*n {
			t.Errorf("n=%d: CSA counter cost %d not O(n)", n, st.UnitCost)
		}
		if st.UnitDepth > 4*lg+16 {
			t.Errorf("n=%d: CSA counter depth %d not O(lg n)", n, st.UnitDepth)
		}
	}
}

// TestPopCountCSARandom matches the tree counter on random inputs.
func TestPopCountCSARandom(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	c := newCSACounter(512)
	for i := 0; i < 50; i++ {
		v := bitvec.Random(rng, 512)
		if got := FromBits(c.Eval(v)); got != v.Ones() {
			t.Fatalf("CSA popcount = %d, want %d", got, v.Ones())
		}
	}
}

func newCSACounter(n int) *netlist.Circuit {
	b := netlist.NewBuilder("csa-popcount")
	in := b.Inputs(n)
	b.SetOutputs(BuildPopCountCSA(b, in))
	return b.MustBuild()
}

func TestCSAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildPopCountCSA(empty) did not panic")
		}
	}()
	newCSACounter(0)
}
