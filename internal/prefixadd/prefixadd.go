// Package prefixadd implements the adder circuitry used by the prefix
// binary sorter of Section III-A: binary adders (a ripple-carry baseline
// and a parallel-prefix adder in the Brent–Kung style, the "lg n-bit prefix
// adder" whose cost and depth the paper quotes as 3 lg n and 2 lg lg n from
// [5]), and a ones-counter tree that "recursively adds the numbers of 1's
// in the two half-size input sequences".
//
// Multi-bit numbers are represented as little-endian wire or bit slices:
// element 0 is the least significant bit.
package prefixadd

import (
	"fmt"

	"absort/internal/bitvec"
	"absort/internal/netlist"
)

// ToBits returns the w-bit little-endian encoding of x.
func ToBits(x, w int) []bitvec.Bit {
	out := make([]bitvec.Bit, w)
	for i := 0; i < w; i++ {
		out[i] = bitvec.Bit((x >> uint(i)) & 1)
	}
	return out
}

// FromBits decodes a little-endian bit slice into an integer.
func FromBits(bits []bitvec.Bit) int {
	x := 0
	for i, b := range bits {
		x |= int(b&1) << uint(i)
	}
	return x
}

// Width returns the number of bits needed to represent values 0..n
// inclusive (e.g. Width(16) = 5, enough for a count of ones of a 16-bit
// vector).
func Width(n int) int {
	w := 1
	for 1<<uint(w)-1 < n {
		w++
	}
	return w
}

// pad extends x to width w with constant-0 wires.
func pad(b *netlist.Builder, x []netlist.Wire, w int) []netlist.Wire {
	for len(x) < w {
		x = append(x, b.Const(0))
	}
	return x
}

// BuildRippleAdd appends a ripple-carry adder for x+y to b and returns the
// sum, one bit wider than the wider operand. Cost O(w), depth O(w).
func BuildRippleAdd(b *netlist.Builder, x, y []netlist.Wire) []netlist.Wire {
	w := max(len(x), len(y))
	if w == 0 {
		panic("prefixadd: BuildRippleAdd of empty operands")
	}
	x, y = pad(b, x, w), pad(b, y, w)
	out := make([]netlist.Wire, w+1)
	var carry netlist.Wire = -1
	for i := 0; i < w; i++ {
		axb := b.Xor(x[i], y[i])
		if carry < 0 {
			out[i] = axb
			carry = b.And(x[i], y[i])
			continue
		}
		out[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(axb, carry))
	}
	out[w] = carry
	return out
}

// BuildPrefixAdd appends a Brent–Kung parallel-prefix adder for x+y to b
// and returns the sum, one bit wider than the wider operand. Cost O(w),
// depth O(lg w) — the linear-cost, logarithmic-depth prefix adder the paper
// relies on for its 3 lg n / 2 lg lg n figures.
func BuildPrefixAdd(b *netlist.Builder, x, y []netlist.Wire) []netlist.Wire {
	w0 := max(len(x), len(y))
	if w0 == 0 {
		panic("prefixadd: BuildPrefixAdd of empty operands")
	}
	// Round the width up to a power of two for the prefix tree; the extra
	// positions are constant zeros and add no unit depth on real paths.
	w := 1
	for w < w0 {
		w <<= 1
	}
	x, y = pad(b, x, w), pad(b, y, w)

	p := make([]netlist.Wire, w) // propagate, preserved for the sum bits
	sg := make([]netlist.Wire, w)
	sp := make([]netlist.Wire, w)
	for i := 0; i < w; i++ {
		p[i] = b.Xor(x[i], y[i])
		sg[i] = b.And(x[i], y[i])
		sp[i] = p[i]
	}
	// Up-sweep.
	for d := 1; d < w; d <<= 1 {
		for i := 2*d - 1; i < w; i += 2 * d {
			sg[i] = b.Or(sg[i], b.And(sp[i], sg[i-d]))
			sp[i] = b.And(sp[i], sp[i-d])
		}
	}
	// Down-sweep: after it, sg[i] is the carry out of bit i.
	for d := w >> 2; d >= 1; d >>= 1 {
		for i := 3*d - 1; i < w; i += 2 * d {
			sg[i] = b.Or(sg[i], b.And(sp[i], sg[i-d]))
			sp[i] = b.And(sp[i], sp[i-d])
		}
	}
	out := make([]netlist.Wire, w0+1)
	out[0] = p[0]
	for i := 1; i < w0; i++ {
		out[i] = b.Xor(p[i], sg[i-1])
	}
	out[w0] = sg[w0-1]
	return out
}

// Adder selects the adder construction used inside composite circuits.
type Adder int

// Adder kinds.
const (
	Ripple Adder = iota // ripple-carry: O(w) cost, O(w) depth
	Prefix              // Brent–Kung prefix: O(w) cost, O(lg w) depth
)

func (a Adder) String() string {
	switch a {
	case Ripple:
		return "ripple"
	case Prefix:
		return "prefix"
	}
	return fmt.Sprintf("Adder(%d)", int(a))
}

// Build appends the selected adder for x+y.
func (a Adder) Build(b *netlist.Builder, x, y []netlist.Wire) []netlist.Wire {
	switch a {
	case Ripple:
		return BuildRippleAdd(b, x, y)
	case Prefix:
		return BuildPrefixAdd(b, x, y)
	}
	panic(fmt.Sprintf("prefixadd: unknown adder %d", int(a)))
}

// BuildPopCount appends a ones-counter for the n input wires: a balanced
// tree that recursively adds the counts of the two halves, exactly the
// scheme of Fig. 5's prefix-adder column. The result is the little-endian
// count, Width(n) bits wide. Cost O(n); depth O(lg n · lg lg n) with the
// prefix adder.
func BuildPopCount(b *netlist.Builder, in []netlist.Wire, adder Adder) []netlist.Wire {
	n := len(in)
	if n == 0 {
		panic("prefixadd: BuildPopCount of no inputs")
	}
	if n == 1 {
		return []netlist.Wire{in[0]}
	}
	h := n / 2
	lo := BuildPopCount(b, in[:h], adder)
	hi := BuildPopCount(b, in[h:], adder)
	sum := adder.Build(b, lo, hi)
	// Trim to the width actually needed for values 0..n.
	if w := Width(n); len(sum) > w {
		sum = sum[:w]
	}
	return sum
}

// PopCountCircuit builds a standalone n-input ones counter.
func PopCountCircuit(n int, adder Adder) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("popcount-%d-%s", n, adder))
	in := b.Inputs(n)
	b.SetOutputs(BuildPopCount(b, in, adder))
	return b.MustBuild()
}

// AdderCircuit builds a standalone w-bit adder: inputs are the little-endian
// bits of x followed by those of y; outputs are the w+1 sum bits.
func AdderCircuit(w int, adder Adder) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("adder-%d-%s", w, adder))
	x := b.Inputs(w)
	y := b.Inputs(w)
	b.SetOutputs(adder.Build(b, x, y))
	return b.MustBuild()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
