package absort_test

// Differential validation of the evaluation engines across every circuit
// builder in the module: for each netlist the legacy gate-by-gate
// interpreter, the compiled scalar engine, and the packed 64-lane engine
// must agree bit-for-bit — exhaustively for small circuits, on random
// probes for large ones.

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/boolsort"
	"absort/internal/cmpnet"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/muxnet"
	"absort/internal/netlist"
	"absort/internal/prefixadd"
	"absort/internal/swapper"
)

// builderCircuits enumerates one small and one larger circuit per builder.
func builderCircuits(t *testing.T) []*netlist.Circuit {
	t.Helper()
	prefix := func(n int) *netlist.Circuit {
		return core.NewPrefixSorter(n, prefixadd.Prefix).Circuit()
	}
	cs := []*netlist.Circuit{
		// Adaptive sorters (Networks 1 and 2).
		core.NewMuxMergerSorter(8).Circuit(),
		core.NewMuxMergerSorter(64).Circuit(),
		prefix(8),
		prefix(32),
		// Boolean-sorter construction.
		boolsort.Circuit(4),
		boolsort.Circuit(16),
		// Comparator networks.
		cmpnet.OddEvenMergeSort(8).Circuit(),
		cmpnet.BitonicSort(16).Circuit(),
		cmpnet.PeriodicBalancedSort(8).Circuit(),
		cmpnet.OddEvenTransposition(6).Circuit(),
		// Swappers.
		swapper.TwoWayCircuit(8),
		swapper.FourWayCircuit(16, swapper.INSwap),
		swapper.FourWayCircuit(16, swapper.OUTSwap),
		// Multiplexer networks.
		muxnet.MuxNKCircuit(16, 4),
		muxnet.DemuxKNCircuit(4, 16),
		// Prefix-adder building blocks.
		prefixadd.PopCountCircuit(8, prefixadd.Prefix),
		prefixadd.AdderCircuit(4, prefixadd.Prefix),
	}
	// Concentrator: the truncated (n,m)-sorter circuit.
	r := concentrator.NewMuxMergerCircuitRouter(16)
	trunc, _, err := r.TruncateToM(4)
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, trunc)
	return cs
}

func TestEnginesAgreeAcrossBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for _, c := range builderCircuits(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			p := c.Compile()
			nin := c.NumInputs()
			var probes []bitvec.Vector
			if nin <= 12 {
				bitvec.All(nin, func(v bitvec.Vector) bool {
					probes = append(probes, v.Clone())
					return true
				})
			} else {
				for i := 0; i < 256; i++ {
					probes = append(probes, bitvec.Random(rng, nin))
				}
				probes = append(probes, bitvec.New(nin), bitvec.New(nin).Complement())
			}
			for base := 0; base < len(probes); base += 64 {
				hi := base + 64
				if hi > len(probes) {
					hi = len(probes)
				}
				block := probes[base:hi]
				wide := p.EvalWide(block)
				for l, in := range block {
					want := c.Eval(in)
					if got := p.Eval(in); !got.Equal(want) {
						t.Fatalf("compiled scalar disagrees on %s: got %s, legacy %s", in, got, want)
					}
					if !wide[l].Equal(want) {
						t.Fatalf("wide lane %d disagrees on %s: got %s, legacy %s", l, in, wide[l], want)
					}
				}
			}
			// Batch engine on the full probe set.
			batch := c.EvalBatch(probes, 0)
			for i, in := range probes {
				if want := c.Eval(in); !batch[i].Equal(want) {
					t.Fatalf("EvalBatch disagrees on %s: got %s, legacy %s", in, batch[i], want)
				}
			}
		})
	}
}
