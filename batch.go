package absort

import (
	"fmt"

	"absort/internal/netlist"
)

// BatchSorter sorts many equal-length binary vectors through one compiled
// gate-level sorting network. The circuit (a mux-merger sorter, Network 2)
// is lowered once into the packed SWAR evaluation program; SortBatch then
// streams inputs through it 64 vectors per traversal, parallelized across
// cores. This is the throughput-oriented front door to the same netlists
// the structural analyses measure.
type BatchSorter struct {
	n        int
	circuit  *netlist.Circuit
	compiled *netlist.Compiled
}

// NewBatchSorter returns a batch sorter for n-bit vectors (n a power of
// two), backed by the n-input mux-merger sorter netlist.
func NewBatchSorter(n int) (*BatchSorter, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("absort: NewBatchSorter(%d): n must be a power of two ≥ 2", n)
	}
	c := NewMuxMergerSorter(n).Circuit()
	return &BatchSorter{n: n, circuit: c, compiled: c.Compile()}, nil
}

// N returns the vector width.
func (s *BatchSorter) N() int { return s.n }

// Circuit exposes the underlying netlist (for cost/depth statistics).
func (s *BatchSorter) Circuit() *netlist.Circuit { return s.circuit }

// Sort sorts a single vector through the compiled engine.
func (s *BatchSorter) Sort(v Vector) (Vector, error) {
	if len(v) != s.n {
		return nil, fmt.Errorf("absort: BatchSorter.Sort: vector has %d bits, want %d", len(v), s.n)
	}
	return s.compiled.Eval(v), nil
}

// SortBatch sorts every vector, 64 per packed traversal, using workers
// goroutines (≤ 0 means GOMAXPROCS). The result preserves input order.
func (s *BatchSorter) SortBatch(vs []Vector, workers int) ([]Vector, error) {
	for i, v := range vs {
		if len(v) != s.n {
			return nil, fmt.Errorf("absort: BatchSorter.SortBatch: vector %d has %d bits, want %d", i, len(v), s.n)
		}
	}
	return s.compiled.EvalBatch(vs, workers), nil
}
