// Package absort is the public API of this reproduction of
// M. V. Chien and A. Y. Oruç, "Adaptive Binary Sorting Schemes and
// Associated Interconnection Networks" (ICPP 1992 / IEEE TPDS 5(6), 1994).
//
// It exposes the paper's three adaptive binary sorting networks and the
// interconnection networks derived from them:
//
//   - NewPrefixSorter — Network 1 (Fig. 5): O(n lg n) cost, O(lg² n) depth,
//     steered by a prefix adder.
//   - NewMuxMergerSorter — Network 2 (Fig. 6 / Table I): O(n lg n) cost,
//     O(lg² n) depth, adder-free.
//   - NewFishSorter — Network 3 (Fig. 7): time-multiplexed, O(n) cost,
//     O(lg³ n) sorting time unpipelined or O(lg² n) pipelined.
//   - NewConcentrator — (n,m)-concentrators over any of the sorters
//     (Section IV).
//   - NewRadixPermuter — the Fig. 10 permutation network: O(n lg n)
//     bit-level cost with fish distribution stages.
//
// Combinational sorters additionally expose exact gate-level netlists via
// their Circuit methods (see internal/netlist for the cost/depth
// accounting conventions), and the fish sorter exposes its cost
// itemization and sorting-time model.
//
// All sequence lengths must be powers of two, matching the paper's
// "power of 2 inputs" assumption.
package absort

import (
	"fmt"

	"absort/internal/bitvec"
	"absort/internal/cmpnet"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/fishhw"
	"absort/internal/permnet"
	"absort/internal/planner"
	"absort/internal/prefixadd"
	"absort/internal/wordsort"
)

// Bit is a binary element (0 or 1).
type Bit = bitvec.Bit

// Vector is a binary sequence.
type Vector = bitvec.Vector

// ParseBits parses a vector from a string of '0'/'1' characters; '/', '_'
// and spaces are ignored, so "1111/0001" parses directly.
func ParseBits(s string) (Vector, error) { return bitvec.FromString(s) }

// Sorter is an n-input adaptive binary sorting network.
type Sorter = core.BinarySorter

// PrefixSorter is the paper's Network 1; see core.PrefixSorter.
type PrefixSorter = core.PrefixSorter

// MuxMergerSorter is the paper's Network 2; see core.MuxMergerSorter.
type MuxMergerSorter = core.MuxMergerSorter

// FishSorter is the paper's Network 3; see core.FishSorter.
type FishSorter = core.FishSorter

// NewPrefixSorter returns an n-input prefix binary sorter (Network 1)
// using the parallel-prefix ones counter. n must be a power of two.
func NewPrefixSorter(n int) *PrefixSorter {
	return core.NewPrefixSorter(n, prefixadd.Prefix)
}

// NewMuxMergerSorter returns an n-input mux-merger binary sorter
// (Network 2). n must be a power of two.
func NewMuxMergerSorter(n int) *MuxMergerSorter {
	return core.NewMuxMergerSorter(n)
}

// NewFishSorter returns an n-input time-multiplexed fish sorter
// (Network 3) with k groups. Use k = Lg(n) for the paper's O(n)-cost
// configuration. n and k must be powers of two with 2 ≤ k ≤ n.
func NewFishSorter(n, k int) *FishSorter {
	return core.NewFishSorter(n, k)
}

// Lg returns lg n for powers of two.
func Lg(n int) int { return core.Lg(n) }

// FishK returns the fish-sorter group count realizing the paper's
// k = lg n choice under the model's power-of-two requirement: the largest
// power of two ≤ max(2, lg n), capped at n.
func FishK(n int) int {
	lg := core.Lg(n)
	k := 2
	for k*2 <= lg {
		k *= 2
	}
	if k > n {
		k = n
	}
	return k
}

// Engine selects the sorting network that routes a concentrator or
// permuter. Engines live in an open registry (internal/planner): the
// paper's four below, the comparator-network zoo of internal/cmpnet
// (Batcher's odd-even merge and bitonic sorters, the balanced and
// constant-periodic networks, the Green/van Voorhis 16-input kernel and
// the fish sorter built on it), and any network registered at runtime
// through RegisterEdgeListEngine.
type Engine = concentrator.Engine

// Routing engines.
const (
	// EngineMuxMerger routes through Network 2 (circuit-switched).
	EngineMuxMerger = concentrator.MuxMerger
	// EnginePrefix routes through Network 1 (circuit-switched).
	EnginePrefix = concentrator.PrefixAdder
	// EngineFish routes through Network 3 (packet-switched, O(n) cost).
	EngineFish = concentrator.Fish
	// EngineRanking is the stable ranking-tree baseline of [11], [13].
	EngineRanking = concentrator.Ranking
)

// EngineByName resolves a registered engine by its registry name
// ("fish", "oem", "periodic", …); EngineNames lists them all.
func EngineByName(name string) (Engine, bool) { return planner.EngineByName(name) }

// EngineNames returns every registered engine name, sorted.
func EngineNames() []string { return planner.EngineNames() }

// RegisterEdgeListEngine registers a comparator network given purely as
// an edge list — network(n) returns the comparator pairs for width n, in
// sequence order — as a routing engine under the given name. The network
// is lowered through the generic comparator-network→IR path
// (internal/cmpnet), with comparators stage-parallelized by earliest
// fit, so the new engine immediately rides the entire compiled stack:
// scalar and 64-lane packed replay, wide and batch pipelines, stuck-at
// fault injection, the serving layer's recompile-around rotation, and
// the bench matrix. minN and maxN bound the widths the engine accepts
// (0 = unbounded); a width-locked kernel sets both to its size. The
// returned Engine value is accepted everywhere an Engine is.
func RegisterEdgeListEngine(name string, minN, maxN int, network func(n int) [][2]int) (Engine, error) {
	if network == nil {
		return 0, fmt.Errorf("absort: RegisterEdgeListEngine %q: nil network", name)
	}
	return planner.Register(planner.EngineSpec{
		Name: name,
		Sort: func(b *planner.Builder, lo, hi int32, _ int) {
			n := int(hi - lo)
			if n == 1 {
				return
			}
			nw, err := cmpnet.FromComparators(n, name, network(n))
			if err != nil {
				panic(fmt.Sprintf("absort: edge-list engine %q: %v", name, err))
			}
			nw.LowerTo(b, lo)
		},
		MinN: minN,
		MaxN: maxN,
	})
}

// Concentrator is an (n,m)-concentrator; see Section IV.
type Concentrator = concentrator.Concentrator

// NewConcentrator returns an (n,m)-concentrator over the given engine.
// k is the fish group count (ignored by other engines).
func NewConcentrator(n, m int, engine Engine, k int) *Concentrator {
	return concentrator.New(n, m, engine, k)
}

// RadixPermuter is the Fig. 10 permutation network.
type RadixPermuter = permnet.RadixPermuter

// NewRadixPermuter returns an n-input radix permuter whose distribution
// stages use the given engine (EngineFish gives the O(n lg n) bit-level
// cost configuration of Section IV).
func NewRadixPermuter(n int, engine Engine) *RadixPermuter {
	return permnet.NewRadixPermuter(n, engine, 0)
}

// RouteBenes computes Beneš switch settings realizing dest via the looping
// algorithm (the Table II baseline); see permnet.RouteBenes.
func RouteBenes(dest []int) (*permnet.BenesConfig, int, error) {
	return permnet.RouteBenes(dest)
}

// Permute routes values through a configured Beneš network.
func Permute[T any](cfg *permnet.BenesConfig, in []T) []T {
	return permnet.ApplyBenes(cfg, in)
}

// WordSorter sorts w-bit keys as a sequence of binary sorting steps routed
// through the radix permutation network (the Section I decomposition);
// see internal/wordsort.
type WordSorter = wordsort.Sorter

// NewWordSorter returns a stable word sorter for n records with w-bit
// keys, routing every radix pass through a radix permuter over the given
// engine.
func NewWordSorter(n, w int, engine Engine) (*WordSorter, error) {
	return wordsort.New(n, w, engine)
}

// SortRecordsBy stably sorts records by a uint64 key through a WordSorter.
func SortRecordsBy[T any](s *WordSorter, items []T, key func(T) uint64) ([]T, error) {
	return wordsort.SortBy(s, items, key)
}

// FishMachine is the clocked gate-level realization of Network Model B:
// every data movement of the fish sorter evaluated through real netlists;
// see internal/fishhw.
type FishMachine = fishhw.Machine

// NewFishMachine constructs the clocked fish-sorter datapath for n inputs
// and k groups (2 ≤ k ≤ n/2, powers of two).
func NewFishMachine(n, k int) (*FishMachine, error) { return fishhw.New(n, k) }
