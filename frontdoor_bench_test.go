package absort_test

// TestFrontdoorThroughputFloor drives the ISSUE 9 acceptance workload
// against an in-process FrontDoorServer — 4 tenants of different shapes
// × 16 pipelined TCP connections, every response verified — and pins a
// conservative CI floor on sustained request throughput. The measured
// point is appended to BENCH_frontdoor.json (the same trajectory file
// `permroute -loadgen` writes) so the CI smoke run leaves a
// machine-readable record of front-door wire throughput.
//
// BenchmarkFrontdoorWire measures the same workload per-request for
// `make bench-frontdoor`.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"absort"
	"absort/internal/race"
)

// frontdoorBenchRecord mirrors cmd/permroute's loadgen record so both
// writers share BENCH_frontdoor.json.
type frontdoorBenchRecord struct {
	When        string  `json:"when"`
	Source      string  `json:"source"`
	Tenants     int     `json:"tenants"`
	Conns       int     `json:"conns"`
	Requests    int     `json:"requests"`
	WallSeconds float64 `json:"wall_s"`
	ReqsPerSec  float64 `json:"reqs_per_s"`
	WordsPerSec float64 `json:"words_per_s"`
	BusyRetries int64   `json:"busy_retries"`
	Wrong       int64   `json:"wrong"`
}

func appendFrontdoorBench(rec frontdoorBenchRecord) {
	const path = "BENCH_frontdoor.json"
	var records []frontdoorBenchRecord
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &records)
	}
	records = append(records, rec)
	if data, err := json.MarshalIndent(records, "", "  "); err == nil {
		_ = os.WriteFile(path, append(data, '\n'), 0o644)
	}
}

// frontdoorTenants is the acceptance tenant set: four shapes spanning
// the engine families and a 16–128 width range.
func frontdoorTenants() (ids []string, specs map[string]absort.TenantSpec) {
	specs = map[string]absort.TenantSpec{
		"mux64":    {N: 64, Engine: absort.EngineMuxMerger},
		"prefix32": {N: 32, Engine: absort.EnginePrefix},
		"fish128":  {N: 128, Engine: absort.EngineFish},
		"rank16":   {N: 16, Engine: absort.EngineRanking},
	}
	return []string{"mux64", "prefix32", "fish128", "rank16"}, specs
}

// driveFrontdoorConn runs reqs verified mixed requests on one client
// connection, retrying busy responses, returning the word volume
// routed and counting wrong responses.
func driveFrontdoorConn(cl *absort.FrontDoorClient, id string, spec absort.TenantSpec,
	seed int64, reqs int, wrong, busyRetries *atomic.Int64) (int64, error) {
	retry := func(call func() error) error {
		for {
			err := call()
			if !errors.Is(err, absort.ErrTenantQueueFull) {
				return err
			}
			busyRetries.Add(1)
			time.Sleep(time.Millisecond)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var words int64
	for i := 0; i < reqs; i++ {
		var err error
		switch i % 3 {
		case 0:
			dest := rng.Perm(spec.N)
			err = retry(func() error {
				perm, err := cl.Permute(id, dest)
				if err != nil {
					return err
				}
				for in, d := range dest {
					if perm[d] != in {
						wrong.Add(1)
					}
				}
				return nil
			})
		case 1:
			marked := make([]bool, spec.N)
			want := 0
			for j := range marked {
				if rng.Intn(2) == 0 {
					marked[j] = true
					want++
				}
			}
			err = retry(func() error {
				perm, count, err := cl.Concentrate(id, marked)
				if err != nil {
					return err
				}
				if count != want {
					wrong.Add(1)
				}
				for j := 0; j < count && j < len(perm); j++ {
					if !marked[perm[j]] {
						wrong.Add(1)
					}
				}
				return nil
			})
		default:
			keys := make([]uint64, spec.N)
			for j := range keys {
				keys[j] = rng.Uint64()
			}
			err = retry(func() error {
				sorted, err := cl.SortWords(id, keys)
				if err != nil {
					return err
				}
				for j := 1; j < len(sorted); j++ {
					if sorted[j-1] > sorted[j] {
						wrong.Add(1)
					}
				}
				return nil
			})
		}
		if err != nil {
			return words, err
		}
		words += int64(spec.N)
	}
	return words, nil
}

func TestFrontdoorThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("wire throughput floor skipped in -short mode")
	}
	if race.Enabled {
		t.Skip("wire throughput floor skipped under the race detector: " +
			"instrumentation distorts the timing gate (correctness is still " +
			"covered by internal/frontdoor's race-enabled end-to-end test)")
	}
	fd := absort.NewFrontDoor(absort.FrontDoorConfig{QueueDepth: 256})
	srv, err := absort.NewFrontDoorServer(fd, "127.0.0.1:0")
	if err != nil {
		fd.Close()
		t.Fatal(err)
	}
	defer func() { srv.Close(); fd.Close() }()

	ids, specs := frontdoorTenants()
	const connsPerTenant = 4 // 4 tenants × 4 = 16 connections
	const reqsPerConn = 60

	var wg sync.WaitGroup
	var wrong, busyRetries, words atomic.Int64
	errCh := make(chan error, len(ids)*connsPerTenant)
	t0 := time.Now()
	for ti, id := range ids {
		for c := 0; c < connsPerTenant; c++ {
			wg.Add(1)
			go func(id string, seed int64) {
				defer wg.Done()
				cl, err := absort.DialFrontDoor(srv.Addr().String())
				if err != nil {
					errCh <- err
					return
				}
				defer cl.Close()
				if err := cl.Register(id, specs[id]); err != nil {
					errCh <- err
					return
				}
				w, err := driveFrontdoorConn(cl, id, specs[id], seed, reqsPerConn, &wrong, &busyRetries)
				words.Add(w)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", id, err)
				}
			}(id, int64(1000+ti*100+c))
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err) // a dropped connection or request is an acceptance failure
	}
	wall := time.Since(t0)
	total := len(ids) * connsPerTenant * reqsPerConn
	reqsPerSec := float64(total) / wall.Seconds()

	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d wrong responses (want zero)", w)
	}
	t.Logf("%d tenants × %d conns: %d verified requests in %v (%.0f reqs/sec, %d busy retries)",
		len(ids), connsPerTenant, total, wall, reqsPerSec, busyRetries.Load())
	appendFrontdoorBench(frontdoorBenchRecord{
		When:        time.Now().UTC().Format(time.RFC3339),
		Source:      "ci-floor",
		Tenants:     len(ids),
		Conns:       len(ids) * connsPerTenant,
		Requests:    total,
		WallSeconds: wall.Seconds(),
		ReqsPerSec:  reqsPerSec,
		WordsPerSec: float64(words.Load()) / wall.Seconds(),
		BusyRetries: busyRetries.Load(),
		Wrong:       wrong.Load(),
	})

	// The CI floor: deliberately conservative (loopback hardware easily
	// sustains hundreds of reqs/sec per connection; the gate exists to
	// catch order-of-magnitude regressions like a serialized dispatcher
	// or a per-request plan recompile, not to benchmark the machine).
	const floorReqsPerSec = 200
	if reqsPerSec < floorReqsPerSec {
		t.Errorf("front door sustained %.0f reqs/sec over the wire, want ≥ %d",
			reqsPerSec, floorReqsPerSec)
	}
}

// BenchmarkFrontdoorWire reports per-request latency of the mixed
// acceptance workload over one pipelined connection per tenant.
func BenchmarkFrontdoorWire(b *testing.B) {
	fd := absort.NewFrontDoor(absort.FrontDoorConfig{QueueDepth: 256})
	srv, err := absort.NewFrontDoorServer(fd, "127.0.0.1:0")
	if err != nil {
		fd.Close()
		b.Fatal(err)
	}
	defer func() { srv.Close(); fd.Close() }()
	ids, specs := frontdoorTenants()
	clients := make([]*absort.FrontDoorClient, len(ids))
	for i, id := range ids {
		cl, err := absort.DialFrontDoor(srv.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Register(id, specs[id]); err != nil {
			b.Fatal(err)
		}
		clients[i] = cl
	}
	var wrong, busy atomic.Int64
	const reqsPerIter = 6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c, id := range ids {
			wg.Add(1)
			go func(cl *absort.FrontDoorClient, id string, seed int64) {
				defer wg.Done()
				if _, err := driveFrontdoorConn(cl, id, specs[id], seed, reqsPerIter, &wrong, &busy); err != nil {
					b.Error(err)
				}
			}(clients[c], id, int64(i*len(ids)+c))
		}
		wg.Wait()
	}
	b.StopTimer()
	if w := wrong.Load(); w != 0 {
		b.Fatalf("%d wrong responses", w)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(ids)*reqsPerIter), "ns/request")
}
