// Integration tests exercising full cross-module pipelines: sorters
// feeding concentrators feeding permuters, the clocked machine against the
// combinational networks, and the verification toolkit certifying the
// public API's constructions end to end.
package absort_test

import (
	"math/rand"
	"testing"

	"absort"
	"absort/internal/bitvec"
	"absort/internal/fault"
	"absort/internal/verify"
)

// TestIntegrationAllSortersCertified certifies every public sorter
// (including the clocked machine) through the parallel verification
// toolkit at n = 16, exhaustively.
func TestIntegrationAllSortersCertified(t *testing.T) {
	machine, err := absort.NewFishMachine(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sorters := map[string]verify.BitSorter{
		"prefix":     absort.NewPrefixSorter(16).Sort,
		"mux-merger": absort.NewMuxMergerSorter(16).Sort,
		"fish":       absort.NewFishSorter(16, 4).Sort,
		"machine": func(v bitvec.Vector) bitvec.Vector {
			out, _, err := machine.Sort(v)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
	}
	for name, s := range sorters {
		if res := verify.SortsAllBinary(16, s, verify.Options{}); !res.OK {
			t.Errorf("%s failed certification on %s", name, res.Counterexample)
		}
	}
}

// TestIntegrationSwitchFabricPipeline runs a two-stage interconnect: a
// concentrator compacts the active flows, then a permuter delivers them to
// their destinations; payload integrity is checked end to end.
func TestIntegrationSwitchFabricPipeline(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(229))
	conc := absort.NewConcentrator(n, n, absort.EngineFish, absort.FishK(n))
	perm := absort.NewRadixPermuter(n, absort.EngineFish)

	for trial := 0; trial < 25; trial++ {
		// Stage 1: sparse arrivals concentrate onto the leading ports.
		marked := make([]bool, n)
		var active []int
		for i := range marked {
			if rng.Intn(3) == 0 {
				marked[i] = true
				active = append(active, i)
			}
		}
		p1, r, err := conc.Plan(marked)
		if err != nil {
			t.Fatal(err)
		}
		if r != len(active) {
			t.Fatalf("r = %d, want %d", r, len(active))
		}
		// Stage 2: the compacted frame is permuted to random destinations.
		dest := rng.Perm(n)
		p2, err := perm.Route(dest)
		if err != nil {
			t.Fatal(err)
		}
		// End-to-end: input i → concentrator output j1 → permuter output
		// dest[j1]. Verify every active payload arrives exactly once.
		arrived := map[int]int{}
		for j2, j1 := range p2 {
			src := p1[j1]
			if j1 < r && marked[src] {
				arrived[src] = j2
			}
		}
		if len(arrived) != len(active) {
			t.Fatalf("%d/%d payloads arrived", len(arrived), len(active))
		}
		for _, src := range active {
			j1 := indexOf(p1, src)
			if want := dest[j1]; arrived[src] != want {
				t.Fatalf("payload %d at output %d, want %d", src, arrived[src], want)
			}
		}
	}
}

func indexOf(p []int, x int) int {
	for j, v := range p {
		if v == x {
			return j
		}
	}
	return -1
}

// TestIntegrationWordSortMatchesBitSorters: sorting 1-bit keys through the
// word sorter must agree with the binary sorters exactly (up to stability,
// which only refines ties).
func TestIntegrationWordSortMatchesBitSorters(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(233))
	ws, err := absort.NewWordSorter(n, 1, absort.EngineMuxMerger)
	if err != nil {
		t.Fatal(err)
	}
	mm := absort.NewMuxMergerSorter(n)
	for trial := 0; trial < 30; trial++ {
		v := bitvec.Random(rng, n)
		keys := make([]uint64, n)
		for i, b := range v {
			keys[i] = uint64(b)
		}
		sorted, _, err := ws.Sort(keys)
		if err != nil {
			t.Fatal(err)
		}
		bits := mm.Sort(v)
		for i := range bits {
			if uint64(bits[i]) != sorted[i] {
				t.Fatalf("word sort %v != bit sort %s", sorted, bits)
			}
		}
	}
}

// TestIntegrationFaultToleranceSummary ties the fault module to the public
// networks: the mux-merger netlist reaches full stuck-at coverage with a
// modest random test set.
func TestIntegrationFaultToleranceSummary(t *testing.T) {
	c := absort.NewMuxMergerSorter(16).Circuit()
	tests := fault.RandomTestSet(16, 64, 9)
	covered, total := fault.StuckAtCoverage(c, tests)
	if covered < total*95/100 {
		t.Errorf("stuck-at coverage %d/%d below 95%%", covered, total)
	}
}

// TestIntegrationBenesVsRadixAgreement: both permutation networks realize
// identical assignments across many random permutations at n = 128.
func TestIntegrationBenesVsRadixAgreement(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(239))
	rp := absort.NewRadixPermuter(n, absort.EngineMuxMerger)
	for trial := 0; trial < 10; trial++ {
		dest := rng.Perm(n)
		p, err := rp.Route(dest)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _, err := absort.RouteBenes(dest)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]int, n)
		for i := range in {
			in[i] = i
		}
		out := absort.Permute(cfg, in)
		for j := range out {
			if out[j] != p[j] {
				t.Fatalf("Beneš output %d = %d, radix %d", j, out[j], p[j])
			}
		}
	}
}
