// Command netstat inspects any network in this module: cost and depth in
// both accounting conventions, component census, optional exhaustive or
// sampled verification (parallel), fault analysis, an ASCII Knuth diagram
// for comparator networks, and Graphviz DOT export of the netlist.
//
//	netstat -network muxmerger -n 16 -verify
//	netstat -network batcher -n 8 -diagram -faults
//	netstat -network prefix -n 64 -dot prefix64.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"absort/internal/boolsort"
	"absort/internal/cmpnet"
	"absort/internal/core"
	"absort/internal/fault"
	"absort/internal/netlist"
	"absort/internal/prefixadd"
	"absort/internal/verify"
)

func main() {
	var (
		network = flag.String("network", "muxmerger",
			"muxmerger | prefix | boolsort | fig1 | batcher | bitonic | oet | balanced | periodic | altoem | hybrid")
		n       = flag.Int("n", 16, "network width (power of two for most networks)")
		block   = flag.Int("block", 4, "block size for -network hybrid")
		doVer   = flag.Bool("verify", false, "verify the sorting property (exhaustive ≤ 2^20 inputs, sampled beyond)")
		doFault = flag.Bool("faults", false, "run fault analysis (dead comparators for comparator networks, stuck-at coverage for netlists)")
		diagram = flag.Bool("diagram", false, "print an ASCII Knuth diagram (comparator networks only)")
		dotPath = flag.String("dot", "", "write Graphviz DOT of the netlist to this file")
	)
	flag.Parse()

	var (
		circuit *netlist.Circuit
		cnet    *cmpnet.Network
	)
	switch *network {
	case "muxmerger":
		circuit = core.NewMuxMergerSorter(*n).Circuit()
	case "prefix":
		circuit = core.NewPrefixSorter(*n, prefixadd.Prefix).Circuit()
	case "boolsort":
		circuit = boolsort.Circuit(*n)
	case "fig1":
		cnet = cmpnet.Fig1()
	case "batcher":
		cnet = cmpnet.OddEvenMergeSort(*n)
	case "bitonic":
		cnet = cmpnet.BitonicSort(*n)
	case "oet":
		cnet = cmpnet.OddEvenTransposition(*n)
	case "balanced":
		cnet = cmpnet.BalancedMergingBlock(*n)
	case "periodic":
		cnet = cmpnet.PeriodicBalancedSort(*n)
	case "altoem":
		cnet = cmpnet.AlternativeOEMSort(*n)
	case "hybrid":
		cnet = cmpnet.HybridOEMSort(*n, *block)
	default:
		fmt.Fprintf(os.Stderr, "netstat: unknown network %q\n", *network)
		os.Exit(2)
	}
	if cnet != nil {
		circuit = cnet.Circuit()
	}

	st := circuit.Stats()
	fmt.Printf("network:    %s\n", circuit.Name())
	fmt.Printf("inputs:     %d\noutputs:    %d\nwires:      %d\n",
		circuit.NumInputs(), circuit.NumOutputs(), circuit.NumWires())
	fmt.Printf("unit cost:  %d\nunit depth: %d\ngate cost:  %d\ngate depth: %d\n",
		st.UnitCost, st.UnitDepth, st.GateCost, st.GateDepth)
	fmt.Println("components:")
	for kind, count := range st.Counts {
		fmt.Printf("  %-12s %d\n", kind, count)
	}

	if *diagram {
		if cnet == nil {
			fmt.Fprintln(os.Stderr, "netstat: -diagram requires a comparator network")
		} else {
			fmt.Println()
			fmt.Print(cnet.Diagram())
		}
	}

	if *doVer {
		width := circuit.NumInputs()
		var res verify.Result
		if width <= 20 {
			// Wide engine: all 2^width inputs, 64 lanes per compiled pass.
			res = verify.SortsAllCircuit(circuit, verify.Options{Minimize: true})
			fmt.Printf("verify:     exhaustive over %d inputs: ", uint64(1)<<uint(width))
		} else {
			res = verify.SortsSampled(width, circuit.Compile().Eval, 2000, 1, verify.Options{Minimize: true})
			fmt.Printf("verify:     sampled (%d inputs): ", res.Checked)
		}
		if res.OK {
			fmt.Println("OK")
		} else {
			fmt.Printf("FAILED on %s -> %s\n", res.Counterexample, res.Got)
		}
	}

	if *doFault {
		if cnet != nil {
			exhaustive := cnet.N() <= 12
			r := fault.AnalyzeDeadComparators(cnet, exhaustive, 500, 1)
			fmt.Printf("dead-comparator faults: %d/%d tolerated (%.0f%%), worst displacement %d\n",
				r.Tolerated, r.Comparators, 100*r.ToleranceRatio(), r.WorstDisplacement)
		}
		tests := fault.RandomTestSet(circuit.NumInputs(), 48, 1)
		covered, total := fault.StuckAtCoverage(circuit, tests)
		fmt.Printf("stuck-at coverage (%d random tests): %d/%d faults (%.1f%%)\n",
			len(tests), covered, total, 100*float64(covered)/float64(total))
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netstat:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := circuit.WriteDOT(f); err != nil {
			fmt.Fprintln(os.Stderr, "netstat:", err)
			os.Exit(1)
		}
		fmt.Printf("DOT written to %s\n", *dotPath)
	}
}
