// Command absort sorts a binary sequence with one of the paper's three
// adaptive sorting networks and reports the network's parameters.
//
//	absort -network muxmerger -input 1011010011110100
//	absort -network fish -n 256 -k 8 -random -seed 7
//	absort -network prefix -input 10/01/11/00 -stats
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"absort/internal/bitvec"
	"absort/internal/core"
	"absort/internal/fishhw"
	"absort/internal/prefixadd"
	"absort/internal/trace"
	"absort/internal/verify"
)

func main() {
	var (
		network = flag.String("network", "muxmerger", "prefix | muxmerger | fish")
		input   = flag.String("input", "", "binary sequence ('/' separators allowed)")
		n       = flag.Int("n", 16, "input width for -random (power of two)")
		k       = flag.Int("k", 0, "fish group count (default: largest power of two ≤ lg n)")
		random  = flag.Bool("random", false, "sort a random sequence of width -n")
		seed    = flag.Int64("seed", 1, "random seed")
		stats   = flag.Bool("stats", false, "print cost/depth statistics")
		useHW   = flag.Bool("machine", false, "fish only: run the clocked gate-level machine (Network Model B)")
		doVer   = flag.Bool("verify", false, "certify the chosen network over all inputs (n ≤ 20) or samples")
		doTrace = flag.Bool("trace", false, "print a step-by-step operation walkthrough")
	)
	flag.Parse()

	var v bitvec.Vector
	switch {
	case *input != "":
		var err error
		v, err = bitvec.FromString(*input)
		if err != nil {
			fatal(err)
		}
	case *random:
		v = bitvec.Random(rand.New(rand.NewSource(*seed)), *n)
	default:
		fatal(fmt.Errorf("provide -input or -random"))
	}
	width := len(v)
	if !core.IsPow2(width) {
		fatal(fmt.Errorf("input width %d is not a power of two", width))
	}

	var sorter core.BinarySorter
	switch *network {
	case "prefix":
		sorter = core.NewPrefixSorter(width, prefixadd.Prefix)
	case "muxmerger":
		sorter = core.NewMuxMergerSorter(width)
	case "fish":
		kk := *k
		if kk == 0 {
			kk = 2
			for kk*2 <= core.Lg(width) {
				kk *= 2
			}
		}
		sorter = core.NewFishSorter(width, kk)
	default:
		fatal(fmt.Errorf("unknown network %q", *network))
	}

	out := sorter.Sort(v)
	fmt.Printf("network: %s\ninput:   %s\nsorted:  %s\n", sorter.Name(), v, out)
	if !out.Equal(v.Sorted()) {
		fatal(fmt.Errorf("internal error: output not sorted"))
	}

	if *doTrace {
		var err error
		switch *network {
		case "prefix":
			_, err = trace.RenderPrefixSort(os.Stdout, v)
		case "muxmerger":
			_, err = trace.RenderMuxMergerSort(os.Stdout, v)
		case "fish":
			fs := sorter.(*core.FishSorter)
			_, tr := fs.SortTraced(v)
			bank := bitvec.Concat(tr.SortedBank...)
			fmt.Printf("phase A: %d groups through the shared %d-input sorter -> %s\n",
				fs.K(), fs.GroupSize(), bank.StringGrouped(fs.GroupSize()))
			_, err = trace.RenderKWayMerge(os.Stdout, bank, fs.K())
		}
		if err != nil {
			fatal(err)
		}
	}

	if *useHW {
		fs, ok := sorter.(*core.FishSorter)
		if !ok {
			fatal(fmt.Errorf("-machine requires -network fish"))
		}
		m, err := fishhw.New(width, fs.K())
		if err != nil {
			fatal(err)
		}
		hwOut, st, err := m.Sort(v)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("machine: sorted %s in %d macro steps, %d unit delays (pipelined makespan %d)\n",
			hwOut, st.MacroSteps, st.UnitDelays, m.PipelinedMakespan())
		if !hwOut.Equal(out) {
			fatal(fmt.Errorf("machine output disagrees with behavioral sorter"))
		}
	}

	if *doVer {
		var res verify.Result
		if width <= 20 {
			res = verify.SortsAllBinary(width, sorter.Sort, verify.Options{Minimize: true})
			fmt.Printf("verify: exhaustive over %d inputs: ", uint64(1)<<uint(width))
		} else {
			res = verify.SortsSampled(width, sorter.Sort, 2000, 1, verify.Options{Minimize: true})
			fmt.Printf("verify: sampled (%d inputs): ", res.Checked)
		}
		if res.OK {
			fmt.Println("OK")
		} else {
			fmt.Printf("FAILED on %s -> %s\n", res.Counterexample, res.Got)
		}
	}

	if *stats {
		switch s := sorter.(type) {
		case *core.PrefixSorter:
			st := s.Circuit().Stats()
			fmt.Printf("unit cost: %d\nunit depth: %d\ngate cost: %d\ngate depth: %d\n",
				st.UnitCost, st.UnitDepth, st.GateCost, st.GateDepth)
		case *core.MuxMergerSorter:
			st := s.Circuit().Stats()
			fmt.Printf("unit cost: %d\nunit depth: %d\ngate cost: %d\ngate depth: %d\n",
				st.UnitCost, st.UnitDepth, st.GateCost, st.GateDepth)
		case *core.FishSorter:
			c := s.Cost()
			fmt.Printf("cost: %d (mux %d + demux %d + sorter %d + merger %d), registers %d\n",
				c.Total(), c.InputMux, c.InputDemux, c.GroupSorter, c.KWayMerger, c.Registers)
			fmt.Printf("depth: %d\ntime (unpipelined): %d\ntime (pipelined): %d\n",
				s.Depth(), s.SortingTime(false).Total(), s.SortingTime(true).Total())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "absort:", err)
	os.Exit(1)
}
