package main

import (
	"reflect"
	"testing"
)

// TestConflictingModes pins the mode-flag matrix: zero or one selected
// mode is fine, any two or more are reported together — the historical
// behaviour silently preferred whichever mode dispatched first, which
// hid operator typos like `-serve :9000 -listen :9001`.
func TestConflictingModes(t *testing.T) {
	cases := []struct {
		name    string
		serve   string
		chaos   bool
		listen  string
		loadgen string
		want    []string
	}{
		{name: "none"},
		{name: "serve only", serve: ":9000", want: []string{"-serve"}},
		{name: "chaos only", chaos: true, want: []string{"-chaos"}},
		{name: "listen only", listen: ":9001", want: []string{"-listen"}},
		{name: "loadgen only", loadgen: "127.0.0.1:9001", want: []string{"-loadgen"}},
		{name: "serve+chaos", serve: ":9000", chaos: true, want: []string{"-serve", "-chaos"}},
		{name: "serve+listen", serve: ":9000", listen: ":9001", want: []string{"-serve", "-listen"}},
		{name: "chaos+loadgen", chaos: true, loadgen: ":9001", want: []string{"-chaos", "-loadgen"}},
		{name: "listen+loadgen", listen: ":9001", loadgen: ":9001", want: []string{"-listen", "-loadgen"}},
		{
			name: "all four", serve: ":9000", chaos: true, listen: ":9001", loadgen: ":9002",
			want: []string{"-serve", "-chaos", "-listen", "-loadgen"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := conflictingModes(tc.serve, tc.chaos, tc.listen, tc.loadgen)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("conflictingModes = %v, want %v", got, tc.want)
			}
			if len(got) > 1 == (len(tc.want) <= 1) {
				t.Fatalf("conflict detection disagrees: got %v", got)
			}
		})
	}
}

// TestLoadgenSpecShapes pins the derived tenant shapes: widths alternate
// n and 2n, engines cycle, so a default loadgen run exercises
// heterogeneous plan sets.
func TestLoadgenSpecShapes(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		spec := loadgenSpec(64, 0, i)
		if spec.N != 64 && spec.N != 128 {
			t.Fatalf("tenant %d width %d, want 64 or 128", i, spec.N)
		}
		seen[spec.N] = true
	}
	if !seen[64] || !seen[128] {
		t.Fatalf("widths not heterogeneous: %v", seen)
	}
}
