// Command permroute routes permutations through the paper's Fig. 10 radix
// permuter and through the Beneš baseline, verifying delivery and
// reporting cost/time figures from Table II.
//
//	permroute -n 256 -trials 5 -engine fish
//
// With -batch, it switches to the throughput pipeline: the requested
// number of random permutations is routed through the permuter's compiled
// route plan across -workers goroutines, and scalar-seed vs planned vs
// planned-parallel vs packed (SWAR) routing rates are reported, alongside
// the compiled Beneš replay baseline both planned (benes-planned) and
// lane-packed (benes-packed). -lanes pins the packed lane-group width — a
// multiple of 64 up to 1024 — and the report shows the resulting wide-path
// split (full lane groups vs planned remainder); every packed result is
// cross-checked bit-for-bit against its planned baseline. -shards adds a
// route-sharded row: the batch is re-routed through the w-way sharded
// hierarchical plan (0 = auto, engaged at n ≥ 65536; otherwise a power of
// two in [2, n/2]) and cross-checked bit-for-bit against the planned path.
//
//	permroute -n 1024 -engine fish -batch 4096 -workers 0 -lanes 256
//	permroute -n 65536 -engine muxmerger -batch 256 -shards 64
//
// With -serve, it replays a workload file through the streaming routing
// service (internal/serve): every line is one request submitted with
// backpressure through the bounded admission queue, and throughput plus
// the service's latency histogram are reported at the end. The workload
// format is one request per line ('#' starts a comment):
//
//	permute d0 d1 d2 ...          route the assignment i -> d_i
//	concentrate 0110...           concentrate the '1'-marked inputs
//	sortwords k0 k1 k2 ...        sort the keys
//
// Use -serve rand to generate -batch random permutation requests instead
// of reading a file.
//
//	permroute -n 1024 -engine fish -serve workload.txt -workers 8 -queue 64
//	permroute -n 4096 -engine fish -serve rand -batch 512
//
// With -chaos, it runs a fault drill through the streaming service:
// -batch mixed requests flow through the service with every response
// verified, stuck-at faults are wedged into the live permute and
// concentrate plans mid-stream, and the report shows the fault counters
// (detected / recompiled / replayed) plus the time from each injection
// to the recompile that recovered from it. Every request must still
// resolve with a verified result.
//
//	permroute -n 256 -engine fish -chaos -batch 512
//
// With -listen, it serves the multi-tenant routing front door
// (internal/frontdoor) over TCP: clients register tenants and stream
// permute/concentrate/sortwords requests over the length-prefixed
// binary wire protocol, scheduled fairly across tenants by deficit
// round-robin. -workers sizes the dispatcher pool and -queue the
// default per-tenant ingress depth. The server runs until SIGINT or
// SIGTERM, then drains gracefully.
//
//	permroute -listen 127.0.0.1:7420 -workers 8 -queue 64
//
// With -loadgen, it drives a front-door server with a mixed verified
// workload: -tenants tenant plan sets of varying width and engine
// (seeded from -n and -engine), -conns concurrent connections
// round-robined across them, -reqs requests per connection. Every
// response is verified client-side, fail-fast busy responses are
// retried, and the run appends a record to BENCH_frontdoor.json (or
// -out). A wrong or dropped response exits nonzero.
//
//	permroute -loadgen 127.0.0.1:7420 -tenants 4 -conns 16 -reqs 200
//
// The mode flags -serve, -chaos, -listen, and -loadgen are mutually
// exclusive; conflicting combinations fail fast with a usage message.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"absort/internal/analysis"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/permnet"
	"absort/internal/planner"
	"absort/internal/serve"
)

// engineByName resolves a -engine flag value through the planner
// registry — any registered engine name works, including engines the
// zoo (internal/cmpnet) or a client registers — plus the command's
// historical aliases.
func engineByName(name string) (concentrator.Engine, bool) {
	switch name {
	case "muxmerger":
		return concentrator.MuxMerger, true
	case "prefix":
		return concentrator.PrefixAdder, true
	}
	return planner.EngineByName(name)
}

func main() {
	var (
		n        = flag.Int("n", 64, "network width (power of two)")
		trials   = flag.Int("trials", 3, "random permutations to route")
		seed     = flag.Int64("seed", 1, "random seed")
		engine   = flag.String("engine", "fish", "routing engine: "+strings.Join(planner.EngineNames(), " | "))
		batch    = flag.Int("batch", 0, "batch size: route this many permutations through the compiled plan pipeline")
		workers  = flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
		lanes    = flag.Int("lanes", 4*permnet.PackedLanes, "packed lane-group width for -batch (multiple of 64, up to 1024)")
		shards   = flag.Int("shards", 0, "sharded routing comparison for -batch: 0 = auto (engaged at n >= 65536), else a power of two in [2, n/2]")
		serveArg = flag.String("serve", "", "replay a workload file through the streaming routing service ('rand' generates -batch random permutes)")
		queue    = flag.Int("queue", 0, "streaming service admission queue depth (0 = 4x workers)")
		chaos    = flag.Bool("chaos", false, "fault drill: wedge stuck-at faults into the live service mid-stream and report time-to-recovery")
		listen   = flag.String("listen", "", "serve the multi-tenant front door over TCP on this address")
		loadgen  = flag.String("loadgen", "", "drive a front-door server at this address with a mixed verified workload")
		tenants  = flag.Int("tenants", 4, "loadgen: tenant plan sets to register")
		conns    = flag.Int("conns", 16, "loadgen: concurrent connections")
		reqs     = flag.Int("reqs", 200, "loadgen: requests per connection")
		out      = flag.String("out", "BENCH_frontdoor.json", "loadgen: benchmark trajectory file")
	)
	flag.Parse()
	if conflict := conflictingModes(*serveArg, *chaos, *listen, *loadgen); len(conflict) > 1 {
		fmt.Fprintf(os.Stderr, "permroute: %s are mutually exclusive; pick one mode\n",
			strings.Join(conflict, ", "))
		os.Exit(2)
	}
	if *n < 2 || !core.IsPow2(*n) {
		fmt.Fprintf(os.Stderr, "permroute: -n %d must be a power of two >= 2\n", *n)
		os.Exit(1)
	}
	if *lanes < permnet.PackedLanes || *lanes > permnet.MaxPackedLanes || *lanes%permnet.PackedLanes != 0 {
		fmt.Fprintf(os.Stderr, "permroute: -lanes %d must be a multiple of %d up to %d\n",
			*lanes, permnet.PackedLanes, permnet.MaxPackedLanes)
		os.Exit(1)
	}
	if *shards != 0 && (*shards < 2 || *shards > *n/2 || !core.IsPow2(*shards)) {
		fmt.Fprintf(os.Stderr, "permroute: -shards %d must be 0 (auto) or a power of two in [2, n/2 = %d]\n",
			*shards, *n/2)
		os.Exit(1)
	}
	eng, ok := engineByName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "permroute: unknown engine %q (registered: %s)\n",
			*engine, strings.Join(planner.EngineNames(), ", "))
		os.Exit(1)
	}
	if !planner.CanRoute(eng, *n) || !planner.CanRoute(eng, 2) {
		fmt.Fprintf(os.Stderr, "permroute: engine %s cannot route the permuter's level widths 2..%d\n",
			eng, *n)
		os.Exit(1)
	}
	kind := analysis.RadixMuxMerger
	if eng == concentrator.Fish {
		kind = analysis.RadixFish
	}

	rng := rand.New(rand.NewSource(*seed))
	if *chaos {
		runChaos(*n, eng, rng, *batch, *workers, *queue)
		return
	}
	if *serveArg != "" {
		runServe(*n, eng, rng, *serveArg, *batch, *workers, *queue)
		return
	}
	if *listen != "" {
		runListen(*listen, *workers, *queue)
		return
	}
	if *loadgen != "" {
		runLoadgen(*loadgen, *n, eng, *seed, *tenants, *conns, *reqs, *out)
		return
	}
	rp := permnet.NewRadixPermuter(*n, eng, 0)
	fmt.Printf("radix permuter (Fig. 10), n=%d, engine=%s\n", *n, eng)
	fmt.Printf("  bit-level cost (model): %d   permutation time (model): %d\n",
		analysis.RadixPermuterCost(*n, kind), analysis.RadixPermuterTime(*n, kind))
	fmt.Printf("Beneš baseline: %d switches, %d stages\n",
		permnet.BenesCost(*n), permnet.BenesDepth(*n))

	if *batch > 0 {
		w := *shards
		if w == 0 && *n >= permnet.ShardedAutoThreshold {
			w = permnet.DefaultShards(*n)
		}
		runBatch(rp, rng, *batch, *workers, *lanes, w)
		runConcentrateBatch(*n, eng, rng, *batch, *workers, *lanes)
		return
	}

	for t := 0; t < *trials; t++ {
		dest := rng.Perm(*n)
		p, err := rp.Route(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		okRadix := permnet.VerifyRouting(dest, p)

		cfg, steps, err := permnet.RouteBenes(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		in := make([]int, *n)
		for i := range in {
			in[i] = i
		}
		out := permnet.ApplyBenes(cfg, in)
		okBenes := true
		for i := range in {
			if out[dest[i]] != i {
				okBenes = false
			}
		}
		fmt.Printf("trial %d: radix delivered=%v   Beneš delivered=%v (looping steps %d)\n",
			t+1, okRadix, okBenes, steps)
	}
}

// runBatch drives the compiled routing pipeline: scalar-seed per-request
// routing vs planned single-route vs planned-parallel batch routing vs
// the SWAR packed engine at the pinned lane-group width, with the
// compiled Beneš replay as the rearrangeable baseline in both its
// planned and packed forms. With shards > 0 the batch is additionally
// routed through the w-way sharded hierarchical plan and cross-checked
// bit-for-bit against the planned result.
func runBatch(rp *permnet.RadixPermuter, rng *rand.Rand, batch, workers, lanes, shards int) {
	n := rp.N()
	dests := make([][]int, batch)
	for i := range dests {
		dests[i] = rng.Perm(n)
	}
	plan := rp.Compile()
	fmt.Printf("batch pipeline: %d permutations, %d levels/plan, workers=%d (GOMAXPROCS %d)\n",
		batch, plan.NumLevels(), workers, runtime.GOMAXPROCS(0))

	t0 := time.Now()
	for _, dest := range dests {
		if _, err := rp.Route(dest); err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
	}
	scalar := time.Since(t0)

	out := make([]int, n)
	t0 = time.Now()
	for _, dest := range dests {
		if err := plan.RouteInto(out, dest); err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
	}
	planned := time.Since(t0)

	t0 = time.Now()
	routedPlanned, err := plan.RouteBatchPlanned(dests, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	parallel := time.Since(t0)

	packedRoute := plan.RouteBatch
	if batch >= permnet.PackedLanes {
		packedRoute = func(d [][]int, w int) ([][]int, error) {
			return plan.RouteBatchWide(d, w, lanes)
		}
	}
	t0 = time.Now()
	routed, err := packedRoute(dests, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	packed := time.Since(t0)

	var sharded time.Duration
	var routedSharded [][]int
	var shardPlan *permnet.ShardedRoutePlan
	if shards > 0 {
		shardPlan, err = rp.Sharded(shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		t0 = time.Now()
		routedSharded, err = shardPlan.RouteBatch(dests, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		sharded = time.Since(t0)
	}

	bp, err := permnet.CompileBenes(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	t0 = time.Now()
	routedBenes, err := bp.RouteBatchPlanned(dests, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	benes := time.Since(t0)

	t0 = time.Now()
	routedBenesPacked, err := bp.RouteBatch(dests, workers) // ≥ 64: packed lane groups
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	benesPacked := time.Since(t0)

	for i, dest := range dests {
		if !permnet.VerifyRouting(dest, routed[i]) {
			fmt.Fprintf(os.Stderr, "permroute: batch request %d not delivered\n", i)
			os.Exit(1)
		}
		if !permnet.VerifyRouting(dest, routedBenes[i]) {
			fmt.Fprintf(os.Stderr, "permroute: Beneš batch request %d not delivered\n", i)
			os.Exit(1)
		}
		for j := range routed[i] {
			if routed[i][j] != routedPlanned[i][j] {
				fmt.Fprintf(os.Stderr, "permroute: request %d: planned and packed permutations differ\n", i)
				os.Exit(1)
			}
			if routedBenesPacked[i][j] != routedBenes[i][j] {
				fmt.Fprintf(os.Stderr, "permroute: request %d: Beneš planned and packed permutations differ\n", i)
				os.Exit(1)
			}
			if routedSharded != nil && routedSharded[i][j] != routedPlanned[i][j] {
				fmt.Fprintf(os.Stderr, "permroute: request %d: planned and sharded permutations differ\n", i)
				os.Exit(1)
			}
		}
	}
	rate := func(d time.Duration) float64 {
		return float64(batch) / d.Seconds()
	}
	perRoute := func(d time.Duration) time.Duration {
		return d / time.Duration(batch)
	}
	fmt.Printf("  scalar seed      %12v/route   %10.0f routes/sec\n", perRoute(scalar), rate(scalar))
	fmt.Printf("  planned          %12v/route   %10.0f routes/sec   (%.1f× scalar)\n",
		perRoute(planned), rate(planned), scalar.Seconds()/planned.Seconds())
	fmt.Printf("  planned-parallel %12v/route   %10.0f routes/sec   (%.1f× scalar)\n",
		perRoute(parallel), rate(parallel), scalar.Seconds()/parallel.Seconds())
	if batch >= permnet.PackedLanes {
		full, rem := batch/lanes, batch%lanes
		split := fmt.Sprintf("%d×%d packed", full, lanes)
		switch {
		case rem >= permnet.MinPackedLanes:
			split += fmt.Sprintf(" + %d packed remainder", rem)
		case rem > 0:
			split += fmt.Sprintf(" + %d planned remainder", rem)
		}
		fmt.Printf("  packed (SWAR)    %12v/route   %10.0f routes/sec   (%.1f× planned-parallel, %s)\n",
			perRoute(packed), rate(packed), parallel.Seconds()/packed.Seconds(), split)
	} else {
		fmt.Printf("  packed engine needs a batch ≥ %d assignments; RouteBatch stayed on the planned path\n",
			permnet.PackedLanes)
	}
	if shardPlan != nil {
		mode := "scalar sub-replay"
		if shardPlan.Packed() {
			mode = "packed sub-replay"
		}
		fmt.Printf("  route-sharded    %12v/route   %10.0f routes/sec   (%.1f× planned-parallel, %d×%d shards, %s)\n",
			perRoute(sharded), rate(sharded), parallel.Seconds()/sharded.Seconds(),
			shardPlan.Shards(), shardPlan.ShardWidth(), mode)
	}
	fmt.Printf("  benes-planned    %12v/route   %10.0f routes/sec   (%d switches/route)\n",
		perRoute(benes), rate(benes), bp.NumSwitches())
	if batch >= permnet.PackedLanes {
		fmt.Printf("  benes-packed     %12v/route   %10.0f routes/sec   (%.1f× benes-planned)\n",
			perRoute(benesPacked), rate(benesPacked), benes.Seconds()/benesPacked.Seconds())
	}
	fmt.Printf("  all %d batch routings delivered on both networks\n", batch)
}

// runConcentrateBatch drives the concentrate batch pipeline over the
// same request count: per-pattern planned routing vs the SWAR lane-packed
// engine at the pinned lane-group width, with a full bit-for-bit
// cross-check between the two paths.
func runConcentrateBatch(n int, eng concentrator.Engine, rng *rand.Rand, batch, workers, lanes int) {
	c := concentrator.New(n, n, eng, 0)
	c.Compile()
	marked := make([][]bool, batch)
	for i := range marked {
		m := make([]bool, n)
		for j := range m {
			m[j] = rng.Intn(2) == 0
		}
		marked[i] = m
	}
	fmt.Printf("concentrate pipeline: %d patterns, n=%d, engine=%s, workers=%d\n",
		batch, n, eng, workers)

	t0 := time.Now()
	plannedP, plannedR, err := c.ConcentrateBatchPlanned(marked, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	planned := time.Since(t0)

	concRoute := c.ConcentrateBatch
	if batch >= concentrator.PackedLanes {
		concRoute = func(m [][]bool, w int) ([][]int, []int, error) {
			return c.ConcentrateBatchWide(m, w, lanes)
		}
	}
	t0 = time.Now()
	packedP, packedR, err := concRoute(marked, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	packed := time.Since(t0)

	for i := range marked {
		if plannedR[i] != packedR[i] {
			fmt.Fprintf(os.Stderr, "permroute: pattern %d: planned count %d, packed count %d\n",
				i, plannedR[i], packedR[i])
			os.Exit(1)
		}
		for j := range plannedP[i] {
			if plannedP[i][j] != packedP[i][j] {
				fmt.Fprintf(os.Stderr, "permroute: pattern %d: planned and packed permutations differ\n", i)
				os.Exit(1)
			}
		}
	}
	rate := func(d time.Duration) float64 { return float64(batch) / d.Seconds() }
	fmt.Printf("  planned          %12v/pattern  %10.0f patterns/sec\n",
		planned/time.Duration(batch), rate(planned))
	if batch >= concentrator.PackedLanes {
		fmt.Printf("  packed (SWAR)    %12v/pattern  %10.0f patterns/sec   (%.1f× planned, %d lanes/replay)\n",
			packed/time.Duration(batch), rate(packed), planned.Seconds()/packed.Seconds(), lanes)
	} else {
		fmt.Printf("  packed engine needs a batch ≥ %d patterns; ConcentrateBatch stayed on the planned path\n",
			concentrator.PackedLanes)
	}
	fmt.Printf("  both paths agree on all %d patterns\n", batch)
}

// runServe replays a workload through the streaming routing service and
// reports throughput and the service's latency histogram.
func runServe(n int, eng concentrator.Engine, rng *rand.Rand, src string, batch, workers, queue int) {
	reqs, err := loadWorkload(n, rng, src, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	svc, err := serve.New(serve.Config{
		N: n, Engine: eng, Workers: workers, QueueDepth: queue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	fmt.Printf("streaming service: %d requests, n=%d, engine=%s, workers=%d, queue=%d\n",
		len(reqs), n, eng, svc.Workers(), svc.QueueDepth())

	ctx := context.Background()
	futs := make([]*serve.Future, 0, len(reqs))
	t0 := time.Now()
	for i, req := range reqs {
		fut, err := svc.Submit(ctx, req) // blocks on backpressure
		if err != nil {
			fmt.Fprintf(os.Stderr, "permroute: request %d: %v\n", i, err)
			os.Exit(1)
		}
		futs = append(futs, fut)
	}
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "permroute: request %d: %v\n", i, err)
			os.Exit(1)
		}
		if reqs[i].Kind == serve.Permute && !permnet.VerifyRouting(reqs[i].Dest, res.Perm) {
			fmt.Fprintf(os.Stderr, "permroute: request %d not delivered\n", i)
			os.Exit(1)
		}
	}
	elapsed := time.Since(t0)
	svc.Close()

	st := svc.Stats()
	fmt.Printf("  %d submitted, %d completed, %d failed, %d rejected\n",
		st.Submitted, st.Completed, st.Failed, st.Rejected)
	fmt.Printf("  wall time %v   %.0f requests/sec\n",
		elapsed, float64(len(reqs))/elapsed.Seconds())
	fmt.Printf("  latency: mean %v   p50 ≤ %v   p99 ≤ %v\n",
		st.MeanLatency(), st.ApproxQuantile(0.50), st.ApproxQuantile(0.99))
	fmt.Printf("  all %d requests resolved\n", len(reqs))
}

// runChaos drives the fault drill: a stream of mixed requests through
// the streaming service with every response verified, a stuck-at fault
// wedged into the live permute plan a quarter of the way through and
// into the live concentrate plan halfway through, and time-to-recovery
// measured from each injection to the recompile that cleared it.
func runChaos(n int, eng concentrator.Engine, rng *rand.Rand, batch, workers, queue int) {
	if batch <= 0 {
		batch = 256
	}
	svc, err := serve.New(serve.Config{
		N: n, Engine: eng, Workers: workers, QueueDepth: queue,
		CheckFraction: 1, // drill mode: verify every response
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	defer svc.Close()
	fmt.Printf("chaos drill: %d requests, n=%d, engine=%s, workers=%d, every response checked\n",
		batch, n, eng, svc.Workers())

	type injection struct {
		at    int
		fault serve.WireFault
		label string
	}
	injections := []injection{
		{batch / 4, serve.WireFault{Kind: serve.Permute, Pos: 1, Bit: core.Lg(n) - 1, Stuck: 1},
			"permute dest-bit stuck-at-1"},
		{batch / 2, serve.WireFault{Kind: serve.Concentrate, Pos: 0, Stuck: 0},
			"concentrate tag stuck-at-0"},
	}
	ctx := context.Background()
	var injected time.Time
	var pendingLabel string
	lastRecompiled := int64(0)
	t0 := time.Now()
	for i := 0; i < batch; i++ {
		for _, inj := range injections {
			if i == inj.at {
				if err := svc.InjectFault(inj.fault); err != nil {
					fmt.Fprintln(os.Stderr, "permroute:", err)
					os.Exit(1)
				}
				injected, pendingLabel = time.Now(), inj.label
				fmt.Printf("  request %4d: injected %s\n", i, inj.label)
			}
		}
		var req serve.Request
		switch i % 2 {
		case 0:
			req = serve.Request{Kind: serve.Permute, Dest: rng.Perm(n)}
		default:
			marked := make([]bool, n)
			for j := range marked {
				marked[j] = rng.Intn(2) == 0
			}
			req = serve.Request{Kind: serve.Concentrate, Marked: marked}
		}
		fut, err := svc.Submit(ctx, req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "permroute: request %d: %v\n", i, err)
			os.Exit(1)
		}
		res, err := fut.Wait(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "permroute: request %d: %v\n", i, err)
			os.Exit(1)
		}
		if req.Kind == serve.Permute && !permnet.VerifyRouting(req.Dest, res.Perm) {
			fmt.Fprintf(os.Stderr, "permroute: request %d: wrong result escaped the service\n", i)
			os.Exit(1)
		}
		if fs := svc.FaultStats(); fs.Recompiled > lastRecompiled {
			lastRecompiled = fs.Recompiled
			if pendingLabel != "" {
				fmt.Printf("  request %4d: recovered from %s in %v (recompile #%d)\n",
					i, pendingLabel, time.Since(injected), fs.Recompiled)
				pendingLabel = ""
			}
		}
	}
	elapsed := time.Since(t0)

	fs := svc.FaultStats()
	eng2, _ := svc.ActiveEngine(serve.Permute)
	fmt.Printf("  fault stats: %d checked, %d detected, %d recompiled, %d replayed, %d degraded\n",
		fs.Checked, fs.Detected, fs.Recompiled, fs.Replayed, fs.Degraded)
	fmt.Printf("  active permute engine after drill: %s   degraded concentrate: %v\n", eng2, svc.Degraded())
	fmt.Printf("  wall time %v   %.0f requests/sec   all %d requests resolved correctly\n",
		elapsed, float64(batch)/elapsed.Seconds(), batch)
	if fs.Detected == 0 || fs.Recompiled == 0 {
		fmt.Fprintln(os.Stderr, "permroute: chaos drill never exercised recovery")
		os.Exit(1)
	}
}

// loadWorkload parses the workload source: "rand" generates count random
// permutation requests, anything else is read as a workload file.
func loadWorkload(n int, rng *rand.Rand, src string, count int) ([]serve.Request, error) {
	if src == "rand" {
		if count <= 0 {
			count = 256
		}
		reqs := make([]serve.Request, count)
		for i := range reqs {
			reqs[i] = serve.Request{Kind: serve.Permute, Dest: rng.Perm(n)}
		}
		return reqs, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var reqs []serve.Request
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		req, err := parseRequest(fields)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", src, line, err)
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%s: empty workload", src)
	}
	return reqs, nil
}

// parseRequest parses one workload line already split into fields.
func parseRequest(fields []string) (serve.Request, error) {
	switch fields[0] {
	case "permute":
		dest := make([]int, 0, len(fields)-1)
		for _, f := range fields[1:] {
			d, err := strconv.Atoi(f)
			if err != nil {
				return serve.Request{}, fmt.Errorf("bad destination %q", f)
			}
			dest = append(dest, d)
		}
		return serve.Request{Kind: serve.Permute, Dest: dest}, nil
	case "concentrate":
		if len(fields) != 2 {
			return serve.Request{}, fmt.Errorf("concentrate wants one 0/1 pattern")
		}
		marked := make([]bool, 0, len(fields[1]))
		for _, c := range fields[1] {
			switch c {
			case '0':
				marked = append(marked, false)
			case '1':
				marked = append(marked, true)
			default:
				return serve.Request{}, fmt.Errorf("bad mark %q", string(c))
			}
		}
		return serve.Request{Kind: serve.Concentrate, Marked: marked}, nil
	case "sortwords":
		keys := make([]uint64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			k, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return serve.Request{}, fmt.Errorf("bad key %q", f)
			}
			keys = append(keys, k)
		}
		return serve.Request{Kind: serve.SortWords, Keys: keys}, nil
	}
	return serve.Request{}, fmt.Errorf("unknown request kind %q", fields[0])
}
