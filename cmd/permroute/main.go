// Command permroute routes permutations through the paper's Fig. 10 radix
// permuter and through the Beneš baseline, verifying delivery and
// reporting cost/time figures from Table II.
//
//	permroute -n 256 -trials 5 -engine fish
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"absort/internal/analysis"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/permnet"
)

func main() {
	var (
		n      = flag.Int("n", 64, "network width (power of two)")
		trials = flag.Int("trials", 3, "random permutations to route")
		seed   = flag.Int64("seed", 1, "random seed")
		engine = flag.String("engine", "fish", "fish | muxmerger | prefix")
	)
	flag.Parse()
	if !core.IsPow2(*n) {
		fmt.Fprintf(os.Stderr, "permroute: n=%d is not a power of two\n", *n)
		os.Exit(1)
	}
	var eng concentrator.Engine
	var kind analysis.RadixPermuterKind
	switch *engine {
	case "fish":
		eng, kind = concentrator.Fish, analysis.RadixFish
	case "muxmerger":
		eng, kind = concentrator.MuxMerger, analysis.RadixMuxMerger
	case "prefix":
		eng, kind = concentrator.PrefixAdder, analysis.RadixMuxMerger
	default:
		fmt.Fprintf(os.Stderr, "permroute: unknown engine %q\n", *engine)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	rp := permnet.NewRadixPermuter(*n, eng, 0)
	fmt.Printf("radix permuter (Fig. 10), n=%d, engine=%s\n", *n, eng)
	fmt.Printf("  bit-level cost (model): %d   permutation time (model): %d\n",
		analysis.RadixPermuterCost(*n, kind), analysis.RadixPermuterTime(*n, kind))
	fmt.Printf("Beneš baseline: %d switches, %d stages\n",
		permnet.BenesCost(*n), permnet.BenesDepth(*n))

	for t := 0; t < *trials; t++ {
		dest := rng.Perm(*n)
		p, err := rp.Route(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		okRadix := permnet.VerifyRouting(dest, p)

		cfg, steps, err := permnet.RouteBenes(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		in := make([]int, *n)
		for i := range in {
			in[i] = i
		}
		out := permnet.ApplyBenes(cfg, in)
		okBenes := true
		for i := range in {
			if out[dest[i]] != i {
				okBenes = false
			}
		}
		fmt.Printf("trial %d: radix delivered=%v   Beneš delivered=%v (looping steps %d)\n",
			t+1, okRadix, okBenes, steps)
	}
}
