// Command permroute routes permutations through the paper's Fig. 10 radix
// permuter and through the Beneš baseline, verifying delivery and
// reporting cost/time figures from Table II.
//
//	permroute -n 256 -trials 5 -engine fish
//
// With -batch, it switches to the throughput pipeline: the requested
// number of random permutations is routed through the permuter's compiled
// route plan across -workers goroutines, and scalar-seed vs planned vs
// planned-parallel routing rates are reported.
//
//	permroute -n 1024 -engine fish -batch 4096 -workers 0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"absort/internal/analysis"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/permnet"
)

func main() {
	var (
		n       = flag.Int("n", 64, "network width (power of two)")
		trials  = flag.Int("trials", 3, "random permutations to route")
		seed    = flag.Int64("seed", 1, "random seed")
		engine  = flag.String("engine", "fish", "fish | muxmerger | prefix")
		batch   = flag.Int("batch", 0, "batch size: route this many permutations through the compiled plan pipeline")
		workers = flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if !core.IsPow2(*n) {
		fmt.Fprintf(os.Stderr, "permroute: n=%d is not a power of two\n", *n)
		os.Exit(1)
	}
	var eng concentrator.Engine
	var kind analysis.RadixPermuterKind
	switch *engine {
	case "fish":
		eng, kind = concentrator.Fish, analysis.RadixFish
	case "muxmerger":
		eng, kind = concentrator.MuxMerger, analysis.RadixMuxMerger
	case "prefix":
		eng, kind = concentrator.PrefixAdder, analysis.RadixMuxMerger
	default:
		fmt.Fprintf(os.Stderr, "permroute: unknown engine %q\n", *engine)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	rp := permnet.NewRadixPermuter(*n, eng, 0)
	fmt.Printf("radix permuter (Fig. 10), n=%d, engine=%s\n", *n, eng)
	fmt.Printf("  bit-level cost (model): %d   permutation time (model): %d\n",
		analysis.RadixPermuterCost(*n, kind), analysis.RadixPermuterTime(*n, kind))
	fmt.Printf("Beneš baseline: %d switches, %d stages\n",
		permnet.BenesCost(*n), permnet.BenesDepth(*n))

	if *batch > 0 {
		runBatch(rp, rng, *batch, *workers)
		return
	}

	for t := 0; t < *trials; t++ {
		dest := rng.Perm(*n)
		p, err := rp.Route(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		okRadix := permnet.VerifyRouting(dest, p)

		cfg, steps, err := permnet.RouteBenes(dest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
		in := make([]int, *n)
		for i := range in {
			in[i] = i
		}
		out := permnet.ApplyBenes(cfg, in)
		okBenes := true
		for i := range in {
			if out[dest[i]] != i {
				okBenes = false
			}
		}
		fmt.Printf("trial %d: radix delivered=%v   Beneš delivered=%v (looping steps %d)\n",
			t+1, okRadix, okBenes, steps)
	}
}

// runBatch drives the compiled routing pipeline: scalar-seed per-request
// routing vs planned single-route vs planned-parallel batch routing over
// the same request set.
func runBatch(rp *permnet.RadixPermuter, rng *rand.Rand, batch, workers int) {
	n := rp.N()
	dests := make([][]int, batch)
	for i := range dests {
		dests[i] = rng.Perm(n)
	}
	plan := rp.Compile()
	fmt.Printf("batch pipeline: %d permutations, %d levels/plan, workers=%d (GOMAXPROCS %d)\n",
		batch, plan.NumLevels(), workers, runtime.GOMAXPROCS(0))

	t0 := time.Now()
	for _, dest := range dests {
		if _, err := rp.Route(dest); err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
	}
	scalar := time.Since(t0)

	out := make([]int, n)
	t0 = time.Now()
	for _, dest := range dests {
		if err := plan.RouteInto(out, dest); err != nil {
			fmt.Fprintln(os.Stderr, "permroute:", err)
			os.Exit(1)
		}
	}
	planned := time.Since(t0)

	t0 = time.Now()
	routed, err := plan.RouteBatch(dests, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	parallel := time.Since(t0)

	for i, dest := range dests {
		if !permnet.VerifyRouting(dest, routed[i]) {
			fmt.Fprintf(os.Stderr, "permroute: batch request %d not delivered\n", i)
			os.Exit(1)
		}
	}
	rate := func(d time.Duration) float64 {
		return float64(batch) / d.Seconds()
	}
	perRoute := func(d time.Duration) time.Duration {
		return d / time.Duration(batch)
	}
	fmt.Printf("  scalar seed      %12v/route   %10.0f routes/sec\n", perRoute(scalar), rate(scalar))
	fmt.Printf("  planned          %12v/route   %10.0f routes/sec   (%.1f× scalar)\n",
		perRoute(planned), rate(planned), scalar.Seconds()/planned.Seconds())
	fmt.Printf("  planned-parallel %12v/route   %10.0f routes/sec   (%.1f× scalar)\n",
		perRoute(parallel), rate(parallel), scalar.Seconds()/parallel.Seconds())
	fmt.Printf("  all %d batch routings delivered\n", batch)
}
