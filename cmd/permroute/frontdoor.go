// Front-door network modes: -listen serves the multi-tenant routing
// front door over TCP; -loadgen drives one with a mixed verified
// workload and records a BENCH_frontdoor.json trajectory.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"absort/internal/concentrator"
	"absort/internal/frontdoor"
	"absort/internal/planner"
)

// conflictingModes returns the names of the exclusive mode flags that
// were set. More than one selected mode is a usage error — the modes
// drive entirely different main loops, and silently preferring one
// (the historical behaviour for some orders) hides the mistake.
func conflictingModes(serveArg string, chaos bool, listen, loadgen string) []string {
	var modes []string
	if serveArg != "" {
		modes = append(modes, "-serve")
	}
	if chaos {
		modes = append(modes, "-chaos")
	}
	if listen != "" {
		modes = append(modes, "-listen")
	}
	if loadgen != "" {
		modes = append(modes, "-loadgen")
	}
	return modes
}

// runListen serves the front door until SIGINT/SIGTERM, then drains.
func runListen(addr string, workers, queue int) {
	fd := frontdoor.New(frontdoor.Config{Workers: workers, QueueDepth: queue})
	srv, err := frontdoor.NewServer(fd, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 64
	}
	fmt.Printf("front door listening on %s (dispatchers=%d, tenant queue=%d)\n",
		srv.Addr(), workers, queue)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	srv.Close()
	fd.Close()
	st := fd.Stats()
	fmt.Printf("served %d tenants: %d submitted, %d completed, %d failed, %d rejected, %d evictions\n",
		st.Tenants, st.Submitted, st.Completed, st.Failed, st.Rejected, st.Evictions)
}

// loadgenSpec derives tenant i's shape: widths alternate n and 2n, and
// engines cycle the configured engine followed by every other registry
// engine that can back a full plan set at the tenant's width (packed-
// profitable, all level widths routable), so the server multiplexes
// genuinely heterogeneous plan sets and newly registered engines join
// the cycle automatically.
func loadgenSpec(n int, eng concentrator.Engine, i int) frontdoor.TenantSpec {
	width := n << (i % 2)
	engines := []concentrator.Engine{eng}
	for _, e := range planner.Engines() {
		if e != eng && planner.CanRoute(e, width) && planner.CanRoute(e, 2) &&
			planner.PackedProfitable(e) {
			engines = append(engines, e)
		}
	}
	return frontdoor.TenantSpec{N: width, Engine: engines[i%len(engines)]}
}

// frontdoorBenchRecord is one appended trajectory point, shared with the
// root-level TestFrontdoorThroughputFloor.
type frontdoorBenchRecord struct {
	When        string  `json:"when"`
	Source      string  `json:"source"`
	Tenants     int     `json:"tenants"`
	Conns       int     `json:"conns"`
	Requests    int     `json:"requests"`
	WallSeconds float64 `json:"wall_s"`
	ReqsPerSec  float64 `json:"reqs_per_s"`
	WordsPerSec float64 `json:"words_per_s"`
	BusyRetries int64   `json:"busy_retries"`
	Wrong       int64   `json:"wrong"`
}

// appendBenchRecord appends rec to the JSON array at path (creating it).
func appendBenchRecord(path string, rec frontdoorBenchRecord) error {
	var records []frontdoorBenchRecord
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &records) // a corrupt file starts a fresh trajectory
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runLoadgen drives a front-door server: tenants registered, conns
// connections round-robined across them, reqs verified mixed requests
// per connection. Busy (fail-fast queue-full) responses are retried;
// anything wrong or dropped exits nonzero.
func runLoadgen(addr string, n int, eng concentrator.Engine, seed int64, tenants, conns, reqs int, out string) {
	if tenants < 1 || conns < 1 || reqs < 1 {
		fmt.Fprintln(os.Stderr, "permroute: -tenants, -conns, -reqs must be positive")
		os.Exit(2)
	}
	specs := make([]frontdoor.TenantSpec, tenants)
	for i := range specs {
		specs[i] = loadgenSpec(n, eng, i)
	}
	fmt.Printf("loadgen: %s, %d tenants × %d conns × %d reqs\n", addr, tenants, conns, reqs)
	for i, spec := range specs {
		fmt.Printf("  tenant-%d: n=%d engine=%s\n", i, spec.N, spec.Engine)
	}

	var wrong, busyRetries, words atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	t0 := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ti := c % tenants
			id := fmt.Sprintf("tenant-%d", ti)
			spec := specs[ti]
			cl, err := frontdoor.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			if err := cl.Register(id, spec); err != nil {
				errCh <- fmt.Errorf("register %s: %w", id, err)
				return
			}
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			for i := 0; i < reqs; i++ {
				if err := loadgenOne(cl, id, spec, rng, i, &wrong, &busyRetries); err != nil {
					errCh <- fmt.Errorf("%s conn %d req %d: %w", id, c, i, err)
					return
				}
				words.Add(int64(spec.N))
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	dropped := 0
	for err := range errCh {
		fmt.Fprintln(os.Stderr, "permroute: loadgen:", err)
		dropped++
	}
	wall := time.Since(t0)
	total := conns * reqs
	rec := frontdoorBenchRecord{
		When:        time.Now().UTC().Format(time.RFC3339),
		Source:      "loadgen",
		Tenants:     tenants,
		Conns:       conns,
		Requests:    total,
		WallSeconds: wall.Seconds(),
		ReqsPerSec:  float64(total) / wall.Seconds(),
		WordsPerSec: float64(words.Load()) / wall.Seconds(),
		BusyRetries: busyRetries.Load(),
		Wrong:       wrong.Load(),
	}
	fmt.Printf("  wall %v   %.0f reqs/sec   %.0f words/sec   %d busy retries\n",
		wall, rec.ReqsPerSec, rec.WordsPerSec, rec.BusyRetries)
	if err := appendBenchRecord(out, rec); err != nil {
		fmt.Fprintln(os.Stderr, "permroute:", err)
		os.Exit(1)
	}
	fmt.Printf("  trajectory appended to %s\n", out)
	if dropped > 0 || rec.Wrong > 0 {
		fmt.Fprintf(os.Stderr, "permroute: loadgen: %d connections dropped, %d wrong responses\n",
			dropped, rec.Wrong)
		os.Exit(1)
	}
	fmt.Printf("  all %d responses verified: zero dropped, zero wrong\n", total)
}

// loadgenOne issues one verified request, retrying while the server
// fails fast with a busy response.
func loadgenOne(cl *frontdoor.Client, id string, spec frontdoor.TenantSpec, rng *rand.Rand,
	i int, wrong, busyRetries *atomic.Int64) error {
	for {
		var err error
		switch i % 3 {
		case 0:
			dest := rng.Perm(spec.N)
			var perm []int
			perm, err = cl.Permute(id, dest)
			if err == nil {
				for in, d := range dest {
					if perm[d] != in {
						wrong.Add(1)
					}
				}
			}
		case 1:
			marked := make([]bool, spec.N)
			want := 0
			for j := range marked {
				if rng.Intn(2) == 0 {
					marked[j] = true
					want++
				}
			}
			var perm []int
			var count int
			perm, count, err = cl.Concentrate(id, marked)
			if err == nil {
				if count != want {
					wrong.Add(1)
				}
				for j := 0; j < count && j < len(perm); j++ {
					if !marked[perm[j]] {
						wrong.Add(1)
					}
				}
			}
		default:
			keys := make([]uint64, spec.N)
			for j := range keys {
				keys[j] = rng.Uint64()
			}
			var sorted []uint64
			sorted, err = cl.SortWords(id, keys)
			if err == nil {
				for j := 1; j < len(sorted); j++ {
					if sorted[j-1] > sorted[j] {
						wrong.Add(1)
					}
				}
			}
		}
		if errors.Is(err, frontdoor.ErrTenantQueueFull) {
			busyRetries.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		return err
	}
}
