// Command tables regenerates the data behind every table and figure of the
// paper (experiments E1–E13 of DESIGN.md plus the X-series extensions).
// The experiment pipeline lives in internal/report, which is unit-tested;
// this command only selects and renders.
//
//	tables -exp all
//	tables -exp fig7 -format csv
//	tables -exp table2 -format markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"absort/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all' (available: "+
		strings.Join(report.IDs(), ", ")+")")
	format := flag.String("format", "text", "output format: text | csv | markdown")
	flag.Parse()

	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(2)
	}

	if *exp == "all" {
		for _, r := range report.All() {
			if err := r.Render(os.Stdout, f); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
				os.Exit(1)
			}
		}
		return
	}
	r, ok := report.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "tables: unknown experiment %q; available: %v all\n",
			*exp, report.IDs())
		os.Exit(2)
	}
	if err := r.Render(os.Stdout, f); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
