package absort

import (
	"absort/internal/frontdoor"
)

// FrontDoor is the multi-tenant routing front door: one shared
// dispatcher pool serving many per-tenant plan sets, each lazily
// instantiated through the shared plan cache on first traffic and
// evicted when idle. Tenants get bounded ingress queues scheduled by
// word-fair deficit round-robin, per-tenant stats, and an adaptive
// controller that resizes queue depth and worker share from the
// serving-layer latency histograms. See internal/frontdoor for the
// scheduling, adaptation, and eviction semantics.
type FrontDoor = frontdoor.FrontDoor

// FrontDoorConfig configures a FrontDoor; zero values select defaults
// (Workers = GOMAXPROCS, QueueDepth = 64, MaxQueueDepth = 16×,
// MaxTenants = 64, IdleTTL = 30s, TargetP99 = 5ms).
type FrontDoorConfig = frontdoor.Config

// TenantSpec declares one tenant's plan-set shape: sorting-network
// width, engine, and scheduling weight.
type TenantSpec = frontdoor.TenantSpec

// FrontDoorFuture is the always-resolved handle of a request admitted
// to a tenant queue.
type FrontDoorFuture = frontdoor.Future

// FrontDoorStats is an aggregate snapshot across all tenants.
type FrontDoorStats = frontdoor.Stats

// TenantStats is one tenant's snapshot: scheduling state, cumulative
// counters, and (when the plan set is live) the inner serving-layer
// stats.
type TenantStats = frontdoor.TenantStats

// FrontDoorServer serves a FrontDoor over TCP with the length-prefixed
// binary wire protocol.
type FrontDoorServer = frontdoor.Server

// FrontDoorClient is a pipelined client connection to a
// FrontDoorServer; concurrent calls share the connection.
type FrontDoorClient = frontdoor.Client

// FrontDoorRemoteError is a refused request reported by the server
// (unknown tenant, malformed payload, routing error). Busy responses
// surface as ErrTenantQueueFull instead.
type FrontDoorRemoteError = frontdoor.RemoteError

// Front-door errors.
var (
	// ErrFrontDoorClosed reports submission after Close.
	ErrFrontDoorClosed = frontdoor.ErrClosed
	// ErrUnknownTenant reports a submission for an unregistered tenant.
	ErrUnknownTenant = frontdoor.ErrUnknownTenant
	// ErrTenantExists reports a duplicate Register.
	ErrTenantExists = frontdoor.ErrTenantExists
	// ErrTooManyTenants reports registration past MaxTenants.
	ErrTooManyTenants = frontdoor.ErrTooManyTenants
	// ErrTenantQueueFull reports fail-fast admission on a full tenant
	// queue; retryable.
	ErrTenantQueueFull = frontdoor.ErrTenantQueueFull
)

// NewFrontDoor starts the dispatcher pool and idle-eviction janitor.
// Callers must Close the front door to release them.
func NewFrontDoor(cfg FrontDoorConfig) *FrontDoor {
	return frontdoor.New(cfg)
}

// NewFrontDoorServer listens on addr and serves fd over the wire
// protocol until Close.
func NewFrontDoorServer(fd *FrontDoor, addr string) (*FrontDoorServer, error) {
	return frontdoor.NewServer(fd, addr)
}

// DialFrontDoor connects a pipelined client to a FrontDoorServer.
func DialFrontDoor(addr string) (*FrontDoorClient, error) {
	return frontdoor.Dial(addr)
}
