// Benchmarks regenerating the data behind every table and figure of the
// paper (experiment IDs E1–E13 of DESIGN.md). Besides wall-clock numbers,
// each benchmark reports the structural metrics the paper's evaluation is
// about — unit cost, unit depth, and sorting time in unit delays — via
// b.ReportMetric, so `go test -bench=.` reproduces the paper-shape results.
package absort_test

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"absort/internal/analysis"
	"absort/internal/bitvec"
	"absort/internal/cmpnet"
	"absort/internal/columnsort"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/muxnet"
	"absort/internal/permnet"
	"absort/internal/prefixadd"
	"absort/internal/swapper"
	"absort/internal/trace"
)

// E1 — Fig. 1: the four-input sorting network (cost 5, depth 3).
func BenchmarkFig1FourInputNet(b *testing.B) {
	nw := cmpnet.Fig1()
	c := nw.Circuit()
	in := bitvec.MustFromString("1010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Eval(in)
	}
	b.ReportMetric(float64(nw.Cost()), "unitcost")
	b.ReportMetric(float64(nw.Depth()), "unitdepth")
}

// E2 — Fig. 2: two-way and four-way swappers (cost n/2 and n, depth 1).
func BenchmarkFig2Swappers(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("two-way/n=%d", n), func(b *testing.B) {
			c := swapper.TwoWayCircuit(n)
			st := c.Stats()
			in := append(bitvec.Vector{1}, bitvec.New(n)...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Eval(in)
			}
			b.ReportMetric(float64(st.UnitCost), "unitcost")
			b.ReportMetric(float64(st.UnitDepth), "unitdepth")
		})
		b.Run(fmt.Sprintf("four-way/n=%d", n), func(b *testing.B) {
			c := swapper.FourWayCircuit(n, swapper.INSwap)
			st := c.Stats()
			in := append(bitvec.Vector{1, 0}, bitvec.New(n)...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Eval(in)
			}
			b.ReportMetric(float64(st.UnitCost), "unitcost")
			b.ReportMetric(float64(st.UnitDepth), "unitdepth")
		})
	}
}

// E3 — Fig. 3: (n,k)-multiplexer and (k,n)-demultiplexer (cost ≤ n,
// depth lg(n/k)).
func BenchmarkFig3MuxDemux(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{16, 4}, {256, 16}} {
		b.Run(fmt.Sprintf("mux/(%d,%d)", tc.n, tc.k), func(b *testing.B) {
			c := muxnet.MuxNKCircuit(tc.n, tc.k)
			st := c.Stats()
			in := bitvec.Concat(muxnet.SelectBits(1, tc.n/tc.k), bitvec.New(tc.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Eval(in)
			}
			b.ReportMetric(float64(st.UnitCost), "unitcost")
			b.ReportMetric(float64(st.UnitDepth), "unitdepth")
		})
	}
}

// E4 — Fig. 4: Batcher's odd-even merge sorter vs. the alternative
// odd-even merge network with balanced merging block.
func BenchmarkFig4OddEvenMerge(b *testing.B) {
	n := 16
	nets := map[string]*cmpnet.Network{
		"batcher":     cmpnet.OddEvenMergeSort(n),
		"alternative": cmpnet.AlternativeOEMSort(n),
		"fig4b-full":  cmpnet.Fig4b(n),
	}
	rng := rand.New(rand.NewSource(1))
	in := bitvec.Random(rng, n)
	for name, nw := range nets {
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.ApplyBits(in)
			}
			b.ReportMetric(float64(nw.Cost()), "unitcost")
			b.ReportMetric(float64(nw.Depth()), "unitdepth")
		})
	}
}

// E5 — Fig. 5: the prefix binary sorter (Network 1). Reports measured
// cost/depth and the paper-formula ratio cost/(3n lg n).
func BenchmarkFig5PrefixSorter(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := core.NewPrefixSorter(n, prefixadd.Prefix)
			st := s.Circuit().Stats()
			rng := rand.New(rand.NewSource(int64(n)))
			in := bitvec.Random(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sort(in)
			}
			b.ReportMetric(float64(st.UnitCost), "unitcost")
			b.ReportMetric(float64(st.UnitDepth), "unitdepth")
			b.ReportMetric(float64(st.UnitCost)/analysis.PrefixSorterCostFormula(n), "cost/3nlgn")
		})
	}
}

// E6 — Table I: the mux-merger's four-way selection, exercised across all
// bisorted inputs at n=16 per iteration.
func BenchmarkTable1MuxMerger(b *testing.B) {
	inputs := make([]bitvec.Vector, 0, 81)
	bitvec.AllBisorted(16, func(v bitvec.Vector) bool {
		inputs = append(inputs, v.Clone())
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range inputs {
			core.MuxMerge(v)
		}
	}
}

// E7 — Fig. 6: the mux-merger binary sorter (Network 2). Reports measured
// cost/depth and the ratio cost/(4n lg n).
func BenchmarkFig6MuxMergerSorter(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := core.NewMuxMergerSorter(n)
			rng := rand.New(rand.NewSource(int64(n)))
			in := bitvec.Random(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sort(in)
			}
			b.ReportMetric(float64(core.MuxMergerSortCost(n)), "unitcost")
			b.ReportMetric(float64(core.MuxMergerSortDepth(n)), "unitdepth")
			b.ReportMetric(float64(core.MuxMergerSortCost(n))/analysis.MuxMergerCostFormula(n), "cost/4nlgn")
		})
	}
}

// E8 — Fig. 7: the fish binary sorter (Network 3). Reports total cost,
// cost/n (the paper claims ≤ 17 + o(1)), and sorting times in unit delays.
func BenchmarkFig7FishSorter(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		k := analysis.KForSize(n)
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			f := core.NewFishSorter(n, k)
			rng := rand.New(rand.NewSource(int64(n)))
			in := bitvec.Random(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Sort(in)
			}
			b.ReportMetric(float64(f.Cost().Total()), "unitcost")
			b.ReportMetric(float64(f.Cost().Total())/float64(n), "cost/n")
			b.ReportMetric(float64(f.SortingTime(false).Total()), "time-unpiped")
			b.ReportMetric(float64(f.SortingTime(true).Total()), "time-piped")
		})
	}
}

// E9 — Fig. 8: the 16-input four-way mux-merger worked example.
func BenchmarkFig8Trace(b *testing.B) {
	in := trace.Fig8Input()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.RenderKWayMerge(io.Discard, in, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 — Fig. 9: the 8-input four-way clean sorter worked example.
func BenchmarkFig9Trace(b *testing.B) {
	in := trace.Fig9Input()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.RenderCleanSorter(io.Discard, in, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 — Fig. 10: the radix permuter over both sorting engines. Reports the
// bit-level cost and permutation-time models of equations (26)–(27).
func BenchmarkFig10RadixPermuter(b *testing.B) {
	for _, tc := range []struct {
		eng  concentrator.Engine
		kind analysis.RadixPermuterKind
	}{
		{concentrator.Fish, analysis.RadixFish},
		{concentrator.MuxMerger, analysis.RadixMuxMerger},
	} {
		for _, n := range []int{256, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", tc.eng, n), func(b *testing.B) {
				rp := permnet.NewRadixPermuter(n, tc.eng, 0)
				rng := rand.New(rand.NewSource(int64(n)))
				dest := rng.Perm(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rp.Route(dest); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(analysis.RadixPermuterCost(n, tc.kind)), "unitcost")
				b.ReportMetric(float64(analysis.RadixPermuterTime(n, tc.kind)), "permtime")
			})
		}
	}
}

// E12 — Table II: permutation-network comparison. The constructed rows
// (Beneš + looping, Batcher word-level, our radix permuters) are actually
// routed; metric columns carry the evaluated Table II costs.
func BenchmarkTable2Permuters(b *testing.B) {
	n := 1024
	rng := rand.New(rand.NewSource(5))
	dest := rng.Perm(n)
	rows := analysis.Table2(n)

	b.Run("benes-looping", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := permnet.RouteBenes(dest); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows[0].Cost, "table2cost")
	})
	b.Run("batcher-word", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := permnet.RouteBatcher(dest); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows[1].Cost, "table2cost")
	})
	b.Run("radix-muxmerger", func(b *testing.B) {
		rp := permnet.NewRadixPermuter(n, concentrator.MuxMerger, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rp.Route(dest); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows[4].Cost, "table2cost")
	})
	b.Run("radix-fish", func(b *testing.B) {
		rp := permnet.NewRadixPermuter(n, concentrator.Fish, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rp.Route(dest); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows[5].Cost, "table2cost")
	})
}

// E13a — time-multiplexed columnsort vs. the fish sorter: both O(n) cost;
// the fish sorter needs one pipelined sorter, columnsort four.
func BenchmarkColumnsortVsFish(b *testing.B) {
	n := 4096
	rng := rand.New(rand.NewSource(9))
	bits := bitvec.Random(rng, n)
	ints := make([]int, n)
	for i, bit := range bits {
		ints[i] = int(bit)
	}
	b.Run("columnsort", func(b *testing.B) {
		m := columnsort.TimeMultiplexedModel(n)
		r, s := columnsort.Dimensions(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := columnsort.Sort(ints, r, s); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(m.TotalCost()), "modelcost")
		b.ReportMetric(float64(m.TimePipelined), "time-piped")
		b.ReportMetric(float64(m.Sorters), "piped-sorters")
	})
	b.Run("fish", func(b *testing.B) {
		f := core.NewFishSorter(n, analysis.KForSize(n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Sort(bits)
		}
		b.ReportMetric(float64(f.Cost().Total()), "modelcost")
		b.ReportMetric(float64(f.SortingTime(true).Total()), "time-piped")
		b.ReportMetric(1, "piped-sorters")
	})
}

// E13b — the AKS crossover model from the abstract.
func BenchmarkAKSCrossover(b *testing.B) {
	m := analysis.DefaultAKS()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m.CostFactorAt(1 << 20)
	}
	b.ReportMetric(m.CrossoverDepthLg(), "crossover-lgn")
	b.ReportMetric(m.CostFactorAt(1<<20), "aks-cost-factor@2^20")
	_ = sink
}

// Baseline comparison: word-level sorting through the classical comparator
// networks, to anchor the adaptive networks' advantage on binary inputs.
func BenchmarkBaselineComparatorNetworks(b *testing.B) {
	n := 1024
	rng := rand.New(rand.NewSource(11))
	in := make([]int, n)
	for i := range in {
		in[i] = rng.Intn(1 << 20)
	}
	for name, nw := range map[string]*cmpnet.Network{
		"batcher-oem": cmpnet.OddEvenMergeSort(n),
		"bitonic":     cmpnet.BitonicSort(n),
	} {
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := nw.ApplyInts(in)
				if !sort.IntsAreSorted(out) {
					b.Fatal("not sorted")
				}
			}
			b.ReportMetric(float64(nw.Cost()), "comparators")
		})
	}
}
