package absort

import (
	"math/rand"
	"testing"

	"absort/internal/bitvec"
)

// TestPublicAPISorters exercises the facade constructors end to end.
func TestPublicAPISorters(t *testing.T) {
	v, err := ParseBits("1011/0100/0010/1110")
	if err != nil {
		t.Fatal(err)
	}
	want := v.Sorted()
	sorters := []Sorter{
		NewPrefixSorter(16),
		NewMuxMergerSorter(16),
		NewFishSorter(16, 4),
	}
	for _, s := range sorters {
		if s.N() != 16 {
			t.Errorf("%s: N = %d", s.Name(), s.N())
		}
		if got := s.Sort(v); !got.Equal(want) {
			t.Errorf("%s: Sort = %s, want %s", s.Name(), got, want)
		}
	}
}

// TestPublicAPIConcentrator checks the concentration path through the
// facade.
func TestPublicAPIConcentrator(t *testing.T) {
	c := NewConcentrator(16, 8, EngineFish, 4)
	marked := make([]bool, 16)
	marked[3], marked[7], marked[12] = true, true, true
	p, r, err := c.Plan(marked)
	if err != nil || r != 3 {
		t.Fatalf("Plan: r=%d err=%v", r, err)
	}
	for j := 0; j < r; j++ {
		if !marked[p[j]] {
			t.Fatalf("output %d fed from unmarked input %d", j, p[j])
		}
	}
}

// TestPublicAPIPermuter checks radix permuter and Beneš through the
// facade.
func TestPublicAPIPermuter(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	n := 32
	dest := make([]int, n)
	for i := range dest {
		dest[i] = i
	}
	rng.Shuffle(n, func(i, j int) { dest[i], dest[j] = dest[j], dest[i] })

	rp := NewRadixPermuter(n, EngineMuxMerger)
	p, err := rp.Route(dest)
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range p {
		if dest[i] != j {
			t.Fatalf("radix permuter misrouted")
		}
	}

	cfg, steps, err := RouteBenes(dest)
	if err != nil || steps <= 0 {
		t.Fatalf("RouteBenes: %v", err)
	}
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	out := Permute(cfg, in)
	for i := range in {
		if out[dest[i]] != i {
			t.Fatalf("Beneš misrouted")
		}
	}
}

// TestLgAndBitAliases keeps the tiny helpers honest.
func TestLgAndBitAliases(t *testing.T) {
	if Lg(64) != 6 {
		t.Error("Lg(64) != 6")
	}
	var b Bit = 1
	var v Vector = bitvec.MustFromString("01")
	if v[1] != b {
		t.Error("alias types broken")
	}
}

// TestPublicAPIWordSorter covers the word-sorting facade.
func TestPublicAPIWordSorter(t *testing.T) {
	s, err := NewWordSorter(16, 4, EngineFish)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 3, 3, 9, 0, 15, 7, 7, 1, 2, 4, 6, 8, 10, 12, 14}
	sorted, _, err := s.Sort(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	type rec struct {
		k uint64
		v string
	}
	items := make([]rec, 16)
	for i := range items {
		items[i] = rec{k: keys[i], v: string(rune('a' + i))}
	}
	out, err := SortRecordsBy(s, items, func(r rec) uint64 { return r.k })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].k > out[i].k {
			t.Fatalf("records not sorted")
		}
	}
}

// TestPublicAPIFishMachine covers the clocked-machine facade.
func TestPublicAPIFishMachine(t *testing.T) {
	m, err := NewFishMachine(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(307))
	v := Vector(bitvec.Random(rng, 32))
	out, st, err := m.Sort(v)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(v.Sorted()) || st.MacroSteps == 0 {
		t.Fatal("machine facade misbehaved")
	}
	p, _, err := m.Route(v)
	if err != nil {
		t.Fatal(err)
	}
	tags := make(Vector, len(p))
	for j, i := range p {
		tags[j] = v[i]
	}
	if !tags.IsSorted() {
		t.Fatal("machine route facade misbehaved")
	}
	if m.PipelinedMakespan() <= 0 {
		t.Fatal("pipelined makespan missing")
	}
	if _, err := NewFishMachine(32, 32); err == nil {
		t.Fatal("accepted k = n")
	}
}

// TestPublicAPIFishK pins the k = lg n rounding.
func TestPublicAPIFishK(t *testing.T) {
	for n, want := range map[int]int{4: 2, 16: 4, 64: 4, 256: 8, 65536: 16} {
		if got := FishK(n); got != want {
			t.Errorf("FishK(%d) = %d, want %d", n, got, want)
		}
	}
	if FishK(2) != 2 {
		t.Error("FishK(2) must cap at n")
	}
}

// TestPublicAPIRankingEngine: the stable engine through the facade.
func TestPublicAPIRankingEngine(t *testing.T) {
	c := NewConcentrator(8, 8, EngineRanking, 0)
	marked := []bool{true, false, true, false, false, true, false, false}
	p, r, err := c.Plan(marked)
	if err != nil || r != 3 {
		t.Fatalf("r=%d err=%v", r, err)
	}
	want := []int{0, 2, 5}
	for j := 0; j < r; j++ {
		if p[j] != want[j] {
			t.Fatalf("ranking engine not stable: %v", p[:r])
		}
	}
}
