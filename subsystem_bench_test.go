// Benchmarks for the supporting subsystems: parallel batch evaluation and
// verification sweeps, circuit-level tagged routing, the clocked machine,
// and fault analysis.
package absort_test

import (
	"fmt"
	"math/rand"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/cmpnet"
	"absort/internal/concentrator"
	"absort/internal/core"
	"absort/internal/fault"
	"absort/internal/fishhw"
	"absort/internal/netlist"
	"absort/internal/verify"
)

// BenchmarkEvalBatchWorkers measures the parallel netlist sweep at several
// worker counts.
func BenchmarkEvalBatchWorkers(b *testing.B) {
	c := core.NewMuxMergerSorter(256).Circuit()
	rng := rand.New(rand.NewSource(13))
	inputs := make([]bitvec.Vector, 512)
	for i := range inputs {
		inputs[i] = bitvec.Random(rng, 256)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.EvalBatch(inputs, workers)
			}
		})
	}
}

// BenchmarkVerifyExhaustive measures the parallel exhaustive certification
// of the mux-merger sorter at n = 16 (65536 inputs per iteration).
func BenchmarkVerifyExhaustive(b *testing.B) {
	s := core.NewMuxMergerSorter(16)
	for _, workers := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := verify.SortsAllBinary(16, s.Sort, verify.Options{Workers: workers}); !res.OK {
					b.Fatal("certification failed")
				}
			}
		})
	}
	// The packed gate-level sweep: all 65536 inputs through the real
	// netlist, 64 lanes per traversal.
	c := s.Circuit()
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("circuit-wide/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := verify.SortsAllCircuit(c, verify.Options{Workers: workers}); !res.OK {
					b.Fatal("circuit certification failed")
				}
			}
		})
	}
}

// BenchmarkCircuitTaggedRouting measures payload routing through the real
// netlists vs the behavioral replay.
func BenchmarkCircuitTaggedRouting(b *testing.B) {
	n := 128
	rng := rand.New(rand.NewSource(17))
	tags := bitvec.Random(rng, n)
	b.Run("netlist-tagged", func(b *testing.B) {
		r := concentrator.NewMuxMergerCircuitRouter(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Route(tags); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("behavioral-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			concentrator.RouteMuxMerger(tags)
		}
	})
}

// BenchmarkFishMachine measures the clocked gate-level machine in both
// modes against problem size.
func BenchmarkFishMachine(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{64, 4}, {256, 8}} {
		m, err := fishhw.New(tc.n, tc.k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(19))
		v := bitvec.Random(rng, tc.n)
		b.Run(fmt.Sprintf("sort/n=%d", tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Sort(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("route/n=%d", tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Route(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		vs := make([]bitvec.Vector, 64)
		for l := range vs {
			vs[l] = bitvec.Random(rng, tc.n)
		}
		b.Run(fmt.Sprintf("sort-wide64/n=%d", tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.SortWide(vs); err != nil {
					b.Fatal(err)
				}
			}
			// Per-vector cost: one iteration sorts 64 lanes.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/vector")
		})
	}
}

// BenchmarkFaultAnalysis measures the Rudolph-robustness sweep and
// stuck-at coverage computation.
func BenchmarkFaultAnalysis(b *testing.B) {
	b.Run("dead-comparators", func(b *testing.B) {
		nw := cmpnet.PeriodicBalancedSort(8)
		for i := 0; i < b.N; i++ {
			fault.AnalyzeDeadComparators(nw, true, 0, 0)
		}
	})
	b.Run("stuck-at-coverage", func(b *testing.B) {
		c := core.NewMuxMergerSorter(16).Circuit()
		tests := fault.RandomTestSet(16, 32, 1)
		b.ReportMetric(float64(2*c.NumWires()), "faults")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fault.StuckAtCoverage(c, tests)
		}
	})
}

// BenchmarkStuckAtEval measures single faulty evaluation overhead vs
// fault-free.
func BenchmarkStuckAtEval(b *testing.B) {
	c := core.NewMuxMergerSorter(64).Circuit()
	rng := rand.New(rand.NewSource(23))
	v := bitvec.Random(rng, 64)
	stuck := map[netlist.Wire]bitvec.Bit{5: 1}
	b.Run("clean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Eval(v)
		}
	})
	b.Run("faulty", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.EvalStuck(v, stuck)
		}
	})
}
