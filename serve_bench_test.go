package absort_test

// BenchmarkServeThroughput measures the streaming routing service against
// the one-shot planned-parallel batch pipeline it wraps, at
// n ∈ {256, 1024, 4096} on the fish engine:
//
//   - serve:            Submit serveBenchBatch permutation requests
//                       through the bounded queue, wait on every Future
//   - planned-parallel: plan.RouteBatch over the same requests (the PR 2
//                       baseline the service must not regress)
//
// Each sub-benchmark reports ns/request; the collected numbers are
// persisted to BENCH_serve.json (alongside BENCH_eval.json and
// BENCH_route.json) so the CI smoke run leaves a machine-readable record
// of the service-layer overhead. TestServeThroughputFloor pins the
// no-regression acceptance criterion at n = 4096.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"absort"
	"absort/internal/permnet"
	"absort/internal/race"
)

// serveBenchRecord is one path × size measurement.
type serveBenchRecord struct {
	Path         string  `json:"path"`
	N            int     `json:"n"`
	NsPerRequest float64 `json:"ns_per_request"`
}

var serveBench struct {
	sync.Mutex
	records []serveBenchRecord
}

// recordServeBench stores a measurement and rewrites BENCH_serve.json with
// everything collected so far (the final sub-run leaves the full table).
func recordServeBench(path string, n int, nsPerRequest float64) {
	serveBench.Lock()
	defer serveBench.Unlock()
	for i, r := range serveBench.records {
		if r.Path == path && r.N == n {
			serveBench.records[i].NsPerRequest = nsPerRequest
			writeServeBench()
			return
		}
	}
	serveBench.records = append(serveBench.records, serveBenchRecord{path, n, nsPerRequest})
	writeServeBench()
}

func writeServeBench() {
	data, err := json.MarshalIndent(serveBench.records, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644)
}

// serveBenchBatch is the number of in-flight requests per benchmark
// iteration — matching routeBenchBatch so the planned-parallel comparison
// is apples to apples.
const serveBenchBatch = 16

// serveSubmitAll submits every destination and waits for all futures,
// failing fast on any error.
func serveSubmitAll(b *testing.B, svc *absort.RoutingService, dests [][]int, futs []*absort.ServeFuture) {
	b.Helper()
	ctx := context.Background()
	for i, dest := range dests {
		fut, err := svc.Submit(ctx, absort.PermuteRequest(dest))
		if err != nil {
			b.Fatal(err)
		}
		futs[i] = fut
	}
	for _, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(2026))
	for _, n := range []int{256, 1024, 4096} {
		dests := make([][]int, serveBenchBatch)
		for i := range dests {
			dests[i] = rng.Perm(n)
		}
		rp := permnet.NewRadixPermuter(n, absort.EngineFish, 0)
		plan := rp.Compile()

		b.Run(fmt.Sprintf("serve/n=%d", n), func(b *testing.B) {
			svc, err := absort.NewRoutingService(absort.ServeConfig{
				N: n, Engine: absort.EngineFish, QueueDepth: serveBenchBatch,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			futs := make([]*absort.ServeFuture, serveBenchBatch)
			serveSubmitAll(b, svc, dests, futs) // warm plans and pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveSubmitAll(b, svc, dests, futs)
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / serveBenchBatch
			b.ReportMetric(ns, "ns/request")
			recordServeBench("serve", n, ns)
		})
		b.Run(fmt.Sprintf("planned-parallel/n=%d", n), func(b *testing.B) {
			if _, err := plan.RouteBatch(dests, 0); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.RouteBatch(dests, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / serveBenchBatch
			b.ReportMetric(ns, "ns/request")
			recordServeBench("planned-parallel", n, ns)
		})
	}
}

// TestServeThroughputFloor pins the acceptance criterion: at n = 4096 the
// streaming service must sustain the planned-parallel RouteBatch
// throughput — the admission queue, futures, and worker pool may not
// regress the compiled plans they wrap. Measured inline so plain
// `go test` enforces it; a 0.9 factor absorbs scheduler noise in what
// should measure ~1.0 (per-request service overhead is a few µs against
// a ~ms route).
func TestServeThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing floor skipped in -short mode")
	}
	if race.Enabled {
		t.Skip("timing floor skipped under the race detector: channel and " +
			"future instrumentation distorts the service/batch ratio")
	}
	n := 4096
	rng := rand.New(rand.NewSource(8))
	dests := make([][]int, serveBenchBatch)
	for i := range dests {
		dests[i] = rng.Perm(n)
	}
	plan := permnet.NewRadixPermuter(n, absort.EngineFish, 0).Compile()
	svc, err := absort.NewRoutingService(absort.ServeConfig{
		N: n, Engine: absort.EngineFish, QueueDepth: serveBenchBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.RouteBatch(dests, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	served := testing.Benchmark(func(b *testing.B) {
		futs := make([]*absort.ServeFuture, serveBenchBatch)
		for i := 0; i < b.N; i++ {
			serveSubmitAll(b, svc, dests, futs)
		}
	})
	batchNs := float64(batch.NsPerOp()) / serveBenchBatch
	servedNs := float64(served.NsPerOp()) / serveBenchBatch
	ratio := batchNs / servedNs
	t.Logf("n=%d: planned-parallel %.0f ns/request, serve %.0f ns/request, serve sustains %.2f× batch",
		n, batchNs, servedNs, ratio)
	if ratio < 0.9 {
		t.Errorf("streaming service sustains only %.2f× the planned-parallel batch throughput "+
			"(batch %.0f ns/request, serve %.0f ns/request), want ≥ 0.9×", ratio, batchNs, servedNs)
	}
}
