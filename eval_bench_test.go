package absort_test

// BenchmarkEvalEngines measures per-vector throughput of the three netlist
// evaluation engines on the mux-merger sorter circuit (Network 2) at
// n ∈ {64, 256, 1024}:
//
//   - legacy:   the gate-by-gate interpreter (Circuit.Eval)
//   - compiled: the lowered instruction stream, one vector per pass
//   - wide:     the packed SWAR engine, 64 vectors per pass
//
// Each sub-benchmark reports ns/vector via b.ReportMetric; the collected
// numbers are persisted to BENCH_eval.json when the run completes so the CI
// smoke run (`make bench`) leaves a machine-readable record of the speedup.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"absort/internal/bitvec"
	"absort/internal/core"
)

// evalBenchRecord is one engine × size measurement.
type evalBenchRecord struct {
	Engine   string  `json:"engine"`
	N        int     `json:"n"`
	NsPerVec float64 `json:"ns_per_vector"`
}

var evalBench struct {
	sync.Mutex
	records []evalBenchRecord
}

// recordEvalBench stores a measurement and rewrites BENCH_eval.json with
// everything collected so far (the final sub-run leaves the full table).
func recordEvalBench(engine string, n int, nsPerVec float64) {
	evalBench.Lock()
	defer evalBench.Unlock()
	for i, r := range evalBench.records {
		if r.Engine == engine && r.N == n {
			evalBench.records[i].NsPerVec = nsPerVec
			writeEvalBench()
			return
		}
	}
	evalBench.records = append(evalBench.records, evalBenchRecord{engine, n, nsPerVec})
	writeEvalBench()
}

func writeEvalBench() {
	data, err := json.MarshalIndent(evalBench.records, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_eval.json", append(data, '\n'), 0o644)
}

func BenchmarkEvalEngines(b *testing.B) {
	rng := rand.New(rand.NewSource(1992))
	for _, n := range []int{64, 256, 1024} {
		c := core.NewMuxMergerSorter(n).Circuit()
		p := c.Compile()
		vs := make([]bitvec.Vector, 64)
		for i := range vs {
			vs[i] = bitvec.Random(rng, n)
		}
		inW := make([]uint64, c.NumInputs())
		outW := make([]uint64, c.NumOutputs())
		p.PackInputs(inW, vs)

		b.Run(fmt.Sprintf("legacy/n=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Eval(vs[i&63])
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(ns, "ns/vector")
			recordEvalBench("legacy", n, ns)
		})
		b.Run(fmt.Sprintf("compiled/n=%d", n), func(b *testing.B) {
			out := make(bitvec.Vector, c.NumOutputs())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.EvalInto(out, vs[i&63])
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(ns, "ns/vector")
			recordEvalBench("compiled", n, ns)
		})
		b.Run(fmt.Sprintf("wide/n=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.EvalPackedInto(outW, inW) // 64 vectors per pass
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 64
			b.ReportMetric(ns, "ns/vector")
			recordEvalBench("wide", n, ns)
		})
	}
}

// TestWideSpeedupFloor pins the acceptance criterion: the packed engine
// must deliver at least 10× the legacy interpreter's per-vector throughput
// on the n=1024 mux-merger sorter. Measured inline (not via the benchmark
// harness) so `go test` enforces it on every run.
func TestWideSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing floor skipped in -short mode")
	}
	n := 1024
	c := core.NewMuxMergerSorter(n).Circuit()
	p := c.Compile()
	rng := rand.New(rand.NewSource(5))
	vs := make([]bitvec.Vector, 64)
	for i := range vs {
		vs[i] = bitvec.Random(rng, n)
	}
	inW := make([]uint64, c.NumInputs())
	outW := make([]uint64, c.NumOutputs())
	p.PackInputs(inW, vs)

	legacy := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Eval(vs[i&63])
		}
	})
	wide := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.EvalPackedInto(outW, inW)
		}
	})
	legacyNs := float64(legacy.NsPerOp())
	wideNs := float64(wide.NsPerOp()) / 64
	speedup := legacyNs / wideNs
	t.Logf("n=%d: legacy %.0f ns/vector, wide %.1f ns/vector, speedup %.1f×", n, legacyNs, wideNs, speedup)
	if speedup < 10 {
		t.Errorf("wide engine speedup %.1f× < 10× floor (legacy %.0f ns/vec, wide %.1f ns/vec)", speedup, legacyNs, wideNs)
	}
}
